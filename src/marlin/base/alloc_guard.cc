#include "marlin/base/alloc_guard.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#include <unistd.h>

namespace marlin::base
{

namespace
{

// Process-wide accounting. Counting only happens while at least one
// AllocGuard is alive, so detached overhead is a single relaxed load
// in operator new.
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_bytes{0};
std::atomic<int> g_active{0};
std::atomic<int> g_forbid{0};

[[noreturn]] void
forbiddenAllocation(std::size_t size) noexcept
{
    // No allocation allowed here (we ARE operator new), so format
    // into a stack buffer and write(2) directly.
    char msg[128];
    const int len = std::snprintf(
        msg, sizeof(msg),
        "AllocGuard: forbidden heap allocation of %zu bytes inside "
        "a Forbid scope\n",
        size);
    if (len > 0) {
        const auto n = static_cast<std::size_t>(len);
        [[maybe_unused]] ssize_t rc =
            ::write(STDERR_FILENO, msg, n < sizeof(msg) ? n : sizeof(msg));
    }
    std::abort();
}

void
record(std::size_t size) noexcept
{
    if (g_active.load(std::memory_order_relaxed) == 0)
        return;
    if (g_forbid.load(std::memory_order_relaxed) > 0)
        forbiddenAllocation(size);
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    g_bytes.fetch_add(size, std::memory_order_relaxed);
}

void *
allocate(std::size_t size)
{
    record(size);
    if (size == 0)
        size = 1;
    for (;;) {
        if (void *p = std::malloc(size))
            return p;
        if (std::new_handler h = std::get_new_handler())
            h();
        else
            throw std::bad_alloc();
    }
}

void *
allocateAligned(std::size_t size, std::size_t align)
{
    record(size);
    if (size == 0)
        size = 1;
    // aligned_alloc requires the size to be a multiple of the
    // alignment; round up (callers never see the slack).
    const std::size_t rounded = (size + align - 1) / align * align;
    for (;;) {
        if (void *p = std::aligned_alloc(align, rounded))
            return p;
        if (std::new_handler h = std::get_new_handler())
            h();
        else
            throw std::bad_alloc();
    }
}

} // namespace

AllocGuard::AllocGuard(Mode mode) noexcept : _mode(mode)
{
    startAllocs = g_allocs.load(std::memory_order_relaxed);
    startBytes = g_bytes.load(std::memory_order_relaxed);
    g_active.fetch_add(1, std::memory_order_relaxed);
    if (_mode == Mode::Forbid)
        g_forbid.fetch_add(1, std::memory_order_relaxed);
}

AllocGuard::~AllocGuard() noexcept
{
    if (_mode == Mode::Forbid)
        g_forbid.fetch_sub(1, std::memory_order_relaxed);
    g_active.fetch_sub(1, std::memory_order_relaxed);
}

std::uint64_t
AllocGuard::allocations() const noexcept
{
    return g_allocs.load(std::memory_order_relaxed) - startAllocs;
}

std::uint64_t
AllocGuard::bytes() const noexcept
{
    return g_bytes.load(std::memory_order_relaxed) - startBytes;
}

bool
AllocGuard::hooked() noexcept
{
    return true;
}

} // namespace marlin::base

// ---------------------------------------------------------------------
// Replacement global allocation functions. Living in this TU means any
// binary that references marlin::base::AllocGuard links them; the
// semantics match the default ones (malloc-backed, new_handler loop)
// plus the guard accounting above.
// ---------------------------------------------------------------------

void *
operator new(std::size_t size)
{
    return marlin::base::allocate(size);
}

void *
operator new[](std::size_t size)
{
    return marlin::base::allocate(size);
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    try {
        return marlin::base::allocate(size);
    } catch (...) {
        return nullptr;
    }
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    try {
        return marlin::base::allocate(size);
    } catch (...) {
        return nullptr;
    }
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    return marlin::base::allocateAligned(
        size, static_cast<std::size_t>(align));
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return marlin::base::allocateAligned(
        size, static_cast<std::size_t>(align));
}

void *
operator new(std::size_t size, std::align_val_t align,
             const std::nothrow_t &) noexcept
{
    try {
        return marlin::base::allocateAligned(
            size, static_cast<std::size_t>(align));
    } catch (...) {
        return nullptr;
    }
}

void *
operator new[](std::size_t size, std::align_val_t align,
               const std::nothrow_t &) noexcept
{
    try {
        return marlin::base::allocateAligned(
            size, static_cast<std::size_t>(align));
    } catch (...) {
        return nullptr;
    }
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t,
                const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t,
                  const std::nothrow_t &) noexcept
{
    std::free(p);
}
