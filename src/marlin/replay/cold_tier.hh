/**
 * @file
 * Mmap-backed cold tier for one replay shard: fixed-stride record
 * segments on disk, written behind the hot ring (spill on eviction)
 * and read back on demand when a sampler's plan reaches past the
 * hot window.
 *
 * Each segment is one sparse file: a 4 KiB page-aligned preamble
 * whose first 64 bytes are a CRC-guarded header (magic "MRCS",
 * geometry, record count — the PR-2 crc32 path guards it), followed
 * by segmentSlots fixed-stride records. Files are created lazily on
 * first touch and ftruncate'd to full size up front, so unspilled
 * pages cost no disk (sparse) and a record never straddles a
 * mapping boundary.
 *
 * madvise hints: data regions are mapped MADV_RANDOM (replay
 * sampling is uniform/prioritized, not sequential); dropPageCache()
 * flushes and MADV_DONTNEED's them, which the round-trip test uses
 * to force real re-reads from disk.
 */

#ifndef MARLIN_REPLAY_COLD_TIER_HH
#define MARLIN_REPLAY_COLD_TIER_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "marlin/replay/replay_store.hh"

namespace marlin::replay
{

/** On-disk segment header: first 64 bytes of every segment file. */
struct ColdSegmentHeader
{
    static constexpr std::uint32_t kMagic = 0x5343524Du; // "MRCS" LE
    static constexpr std::uint32_t kVersion = 1;

    std::uint32_t magic = kMagic;
    std::uint32_t version = kVersion;
    std::uint64_t strideScalars = 0; ///< Reals per record.
    std::uint64_t segmentSlots = 0;  ///< Record capacity of this file.
    std::uint64_t firstSlot = 0;     ///< First shard-local slot held.
    std::uint32_t shardIndex = 0;
    std::uint32_t shardCount = 0;
    std::uint64_t records = 0; ///< Spill writes applied (cumulative).
    std::uint8_t reserved[12] = {};
    std::uint32_t crc = 0; ///< crc32 over the preceding 60 bytes.

    /** Recompute the guard CRC from the other fields. */
    std::uint32_t computeCrc() const;
};

static_assert(sizeof(ColdSegmentHeader) == 64,
              "cold segment header must be exactly 64 bytes");

/**
 * The cold half of one shard's slot space. Slots are shard-local
 * (0 .. slots-1) — ShardedStore owns the logical->shard mapping.
 * Writes come from one thread (the append path). Lazy segment
 * mapping is mutex-guarded so a reader thread distinct from the
 * writer is safe, but ShardedStore additionally requires at most
 * ONE gather thread at a time: cold gathers stage through a single
 * shared scratch row (see ShardedStore::coldStage).
 */
class MmapColdTier
{
  public:
    /** Default records per segment file (1 Mi records). */
    static constexpr BufferIndex kDefaultSegmentSlots = 1u << 20;

    /** Bytes reserved before record data (page-aligned header). */
    static constexpr std::size_t kHeaderBytes = 4096;

    /**
     * @param dir Directory holding this tier's segment files.
     * @param shard_index / @param shard_count Identity stamped into
     *        segment headers (guards cross-wiring shards on load).
     * @param stride_scalars Reals per record.
     * @param slots Shard-local slot count covered by the tier.
     * @param segment_slots Records per segment file.
     */
    MmapColdTier(std::string dir, std::size_t shard_index,
                 std::size_t shard_count, std::size_t stride_scalars,
                 BufferIndex slots,
                 BufferIndex segment_slots = kDefaultSegmentSlots);
    ~MmapColdTier();

    MmapColdTier(const MmapColdTier &) = delete;
    MmapColdTier &operator=(const MmapColdTier &) = delete;

    BufferIndex slots() const { return _slots; }
    BufferIndex segmentSlots() const { return segSlots; }
    std::size_t segmentCount() const { return segments.size(); }
    std::size_t strideScalars() const { return stride; }

    /** Spill one evicted hot record into shard-local @p slot. */
    void writeRecord(BufferIndex slot, const Real *rec);

    /**
     * Record pointer for shard-local @p slot; faults the segment
     * mapping in on first touch. Reads of never-spilled slots see
     * zeros (sparse file) — ShardedStore never requests them.
     */
    const Real *readRecord(BufferIndex slot) const;

    /** Records spilled into this tier so far. */
    std::uint64_t spilledCount() const { return _spilled; }

    /**
     * Sync mapped segments and rewrite their headers + CRC. An
     * msync failure is fatal by default; the destructor passes
     * @p fatal_on_error = false to warn-and-continue instead of
     * aborting mid-unwind on a transient I/O error.
     */
    void flush(bool fatal_on_error = true) const;

    /**
     * flush(), then advise the kernel to drop the data pages
     * (MADV_DONTNEED) so the next read faults from disk. Test hook
     * for the spill/gather round-trip.
     */
    void dropPageCache() const;

    /** On-disk bytes of segment files created so far (apparent). */
    std::size_t storageBytes() const;

    /** Segment file path for @p seg (exists only once touched). */
    std::string segmentPath(std::size_t seg) const;

    /**
     * Re-open every segment file the manifest says exists and
     * verify header CRC + geometry WITHOUT adopting the manifest:
     * the tier's logical state (record counts, spill total) is
     * unchanged regardless of outcome, so callers can validate all
     * shards before committing any of them.
     */
    StoreLoadResult
    validateManifest(const std::vector<std::uint64_t>
                         &segment_records) const;

    /**
     * Commit a manifest previously accepted by validateManifest
     * (record counts + spill total). Cannot fail.
     */
    void adoptManifest(std::uint64_t spilled,
                       const std::vector<std::uint64_t>
                           &segment_records);

    /**
     * validateManifest + adoptManifest in one step: used on
     * checkpoint load to validate the cold-segment references. A
     * failure leaves the tier untouched.
     */
    StoreLoadResult restore(std::uint64_t spilled,
                            const std::vector<std::uint64_t>
                                &segment_records);

    /** Per-segment cumulative spill counts (for the manifest). */
    std::vector<std::uint64_t> segmentRecords() const;

  private:
    struct Segment
    {
        /** Mapping base (header page included); null = untouched. */
        std::atomic<void *> base{nullptr};
        int fd = -1;
        std::size_t mapBytes = 0;
        std::uint64_t records = 0; ///< Spills into this segment.
    };

    /** Map (creating if @p create) segment @p seg; returns base. */
    void *ensureMapped(std::size_t seg, bool create) const;

    Real *recordPtr(void *base, BufferIndex slot_in_seg) const;

    std::string _dir;
    std::size_t shardIdx;
    std::size_t shardTotal;
    std::size_t stride;
    BufferIndex _slots;
    BufferIndex segSlots;
    std::uint64_t _spilled = 0;

    mutable std::vector<Segment> segments;
    mutable std::mutex mapLock; ///< Guards lazy segment mapping.
};

} // namespace marlin::replay

#endif // MARLIN_REPLAY_COLD_TIER_HH
