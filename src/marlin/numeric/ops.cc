#include "marlin/numeric/ops.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "marlin/numeric/kernels.hh"

namespace marlin::numeric
{

Matrix
add(const Matrix &a, const Matrix &b)
{
    Matrix out = a;
    out += b;
    return out;
}

Matrix
sub(const Matrix &a, const Matrix &b)
{
    Matrix out = a;
    out -= b;
    return out;
}

Matrix
scale(const Matrix &a, Real factor)
{
    Matrix out = a;
    out *= factor;
    return out;
}

void
addRowBias(Matrix &m, const Matrix &bias)
{
    MARLIN_ASSERT(bias.rows() == 1 && bias.cols() == m.cols(),
                  "bias shape mismatch");
    const kernels::KernelTable &kt = kernels::active();
    const Real *b = bias.row(0);
    for (std::size_t r = 0; r < m.rows(); ++r)
        kt.add(b, m.row(r), m.cols());
}

Matrix
sumRows(const Matrix &m)
{
    Matrix out;
    sumRowsInto(m, out);
    return out;
}

void
sumRowsInto(const Matrix &m, Matrix &out)
{
    out.resize(1, m.cols());
    // Column-wise reduction: each output lane sums its own column
    // in ascending row order, so the vector path is bit-identical
    // to the scalar one.
    const kernels::KernelTable &kt = kernels::active();
    Real *acc = out.row(0);
    for (std::size_t r = 0; r < m.rows(); ++r)
        kt.add(m.row(r), acc, m.cols());
}

Real
mean(const Matrix &m)
{
    if (m.empty())
        return Real(0);
    return sum(m) / static_cast<Real>(m.size());
}

Real
sum(const Matrix &m)
{
    // Kahan-free double accumulation is plenty for our sizes.
    double acc = 0.0;
    const Real *d = m.data();
    for (std::size_t i = 0; i < m.size(); ++i)
        acc += d[i];
    return static_cast<Real>(acc);
}

Real
maxAbs(const Matrix &m)
{
    Real best = 0;
    const Real *d = m.data();
    for (std::size_t i = 0; i < m.size(); ++i)
        best = std::max(best, std::abs(d[i]));
    return best;
}

bool
hasNonFinite(const Matrix &m)
{
    const Real *d = m.data();
    for (std::size_t i = 0; i < m.size(); ++i)
        if (!std::isfinite(d[i]))
            return true;
    return false;
}

void
softmaxRows(Matrix &m)
{
    for (std::size_t r = 0; r < m.rows(); ++r) {
        Real *row = m.row(r);
        Real mx = -std::numeric_limits<Real>::infinity();
        for (std::size_t c = 0; c < m.cols(); ++c)
            mx = std::max(mx, row[c]);
        Real total = 0;
        for (std::size_t c = 0; c < m.cols(); ++c) {
            row[c] = std::exp(row[c] - mx);
            total += row[c];
        }
        const Real inv = Real(1) / total;
        for (std::size_t c = 0; c < m.cols(); ++c)
            row[c] *= inv;
    }
}

void
softmaxBackwardRows(const Matrix &softmax_out, const Matrix &grad_out,
                    Matrix &grad_in)
{
    MARLIN_ASSERT(softmax_out.rows() == grad_out.rows() &&
                      softmax_out.cols() == grad_out.cols(),
                  "softmax backward shape mismatch");
    grad_in.resize(softmax_out.rows(), softmax_out.cols());
    for (std::size_t r = 0; r < softmax_out.rows(); ++r) {
        const Real *s = softmax_out.row(r);
        const Real *g = grad_out.row(r);
        Real dot = 0;
        for (std::size_t c = 0; c < softmax_out.cols(); ++c)
            dot += s[c] * g[c];
        Real *out = grad_in.row(r);
        for (std::size_t c = 0; c < softmax_out.cols(); ++c)
            out[c] = s[c] * (g[c] - dot);
    }
}

std::vector<std::size_t>
gumbelArgmaxRows(const Matrix &logits, Rng &rng)
{
    std::vector<std::size_t> picks(logits.rows());
    for (std::size_t r = 0; r < logits.rows(); ++r)
        picks[r] = gumbelArgmaxRow(logits, r, rng);
    return picks;
}

std::size_t
gumbelArgmaxRow(const Matrix &logits, std::size_t row, Rng &rng)
{
    const Real *vals = logits.row(row);
    Real best = -std::numeric_limits<Real>::infinity();
    std::size_t best_c = 0;
    for (std::size_t c = 0; c < logits.cols(); ++c) {
        double u = std::max(rng.uniform(),
                            std::numeric_limits<double>::min());
        Real g = static_cast<Real>(-std::log(-std::log(u)));
        Real v = vals[c] + g;
        if (v > best) {
            best = v;
            best_c = c;
        }
    }
    return best_c;
}

std::vector<std::size_t>
argmaxRows(const Matrix &m)
{
    std::vector<std::size_t> picks(m.rows());
    for (std::size_t r = 0; r < m.rows(); ++r) {
        const Real *row = m.row(r);
        picks[r] = static_cast<std::size_t>(
            std::max_element(row, row + m.cols()) - row);
    }
    return picks;
}

Matrix
oneHot(const std::vector<std::size_t> &indices, std::size_t classes)
{
    Matrix out(indices.size(), classes);
    for (std::size_t r = 0; r < indices.size(); ++r) {
        MARLIN_ASSERT(indices[r] < classes, "one-hot index out of range");
        out(r, indices[r]) = Real(1);
    }
    return out;
}

Matrix
hconcat(const std::vector<const Matrix *> &parts)
{
    Matrix out;
    hconcatInto(parts, out);
    return out;
}

void
hconcatInto(const std::vector<const Matrix *> &parts, Matrix &out)
{
    MARLIN_ASSERT(!parts.empty(), "hconcat of zero matrices");
    const std::size_t rows = parts.front()->rows();
    std::size_t cols = 0;
    for (const Matrix *p : parts) {
        MARLIN_ASSERT(p->rows() == rows, "hconcat row mismatch");
        cols += p->cols();
    }
    out.reshape(rows, cols); // Fully overwritten below.
    for (std::size_t r = 0; r < rows; ++r) {
        Real *dst = out.row(r);
        for (const Matrix *p : parts) {
            const Real *src = p->row(r);
            std::copy(src, src + p->cols(), dst);
            dst += p->cols();
        }
    }
}

void
fillUniform(Matrix &m, Rng &rng, Real lo, Real hi)
{
    Real *d = m.data();
    for (std::size_t i = 0; i < m.size(); ++i)
        d[i] = lo + (hi - lo) * rng.uniformf();
}

void
fillGaussian(Matrix &m, Rng &rng, Real sigma)
{
    Real *d = m.data();
    for (std::size_t i = 0; i < m.size(); ++i)
        d[i] = static_cast<Real>(rng.gaussian(0.0, sigma));
}

void
clampInPlace(Matrix &m, Real lo, Real hi)
{
    kernels::active().clamp(lo, hi, m.data(), m.size());
}

} // namespace marlin::numeric
