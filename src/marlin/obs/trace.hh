/**
 * @file
 * Bounded in-memory trace-event buffer with Chrome/Perfetto
 * trace_event JSON export.
 *
 * Disabled by default: recording sites pay one relaxed atomic load
 * and a predicted-not-taken branch. When enabled (--trace on the CLI
 * and benches), phase spans, checkpoint writes and thread-pool chunk
 * executions land in a fixed-capacity buffer via a single fetch_add
 * — no locks, no allocation — and exportTrace() serializes them into
 * a JSON file that ui.perfetto.dev / chrome://tracing open directly.
 *
 * Overflow policy: once the buffer is full, further events are
 * dropped (the earliest events win — a trace that loses its warm-up
 * would misattribute startup cost) and *counted*; the exporter
 * reports the dropped total in the JSON and callers surface it, so
 * truncation is never silent.
 *
 * Event names/categories are `const char *` by contract: they must
 * point at string literals or other process-lifetime storage, which
 * every MARLin call site satisfies (phase names, static labels).
 */

#ifndef MARLIN_OBS_TRACE_HH
#define MARLIN_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "marlin/base/instant.hh"

namespace marlin::obs
{

/** One completed span ("ph":"X"), times in ns since process start. */
struct TraceEvent
{
    const char *name = nullptr;
    const char *cat = nullptr;
    std::uint64_t startNs = 0;
    std::uint64_t durNs = 0;
    std::uint32_t tid = 0;
};

/** The process-wide bounded trace buffer. */
class TraceRing
{
  public:
    /**
     * Install a fresh buffer of @p capacity events as the active
     * ring (replacing any previous one). Not thread-safe against
     * concurrent recording — call at startup, like --trace does.
     */
    static void enable(std::size_t capacity);

    /** Detach the active ring (recording sites go back to no-ops). */
    static void disable();

    /** Active ring, or nullptr when tracing is off. */
    static TraceRing *
    active() noexcept
    {
        return g_active.load(std::memory_order_acquire);
    }

    /** Record one span. Lock-free; drops (and counts) when full. */
    void
    record(const char *name, const char *cat, std::uint64_t start_ns,
           std::uint64_t dur_ns) noexcept
    {
        const std::size_t idx =
            next.fetch_add(1, std::memory_order_relaxed);
        if (idx >= events.size()) {
            droppedCount.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        TraceEvent &e = events[idx];
        e.name = name;
        e.cat = cat;
        e.startNs = start_ns;
        e.durNs = dur_ns;
        e.tid = base::currentThreadTag();
    }

    std::size_t capacity() const { return events.size(); }

    /** Events actually stored (<= capacity). */
    std::size_t
    size() const noexcept
    {
        const std::size_t n = next.load(std::memory_order_relaxed);
        return n < events.size() ? n : events.size();
    }

    /** Events rejected because the buffer was full. */
    std::size_t
    dropped() const noexcept
    {
        return droppedCount.load(std::memory_order_relaxed);
    }

    const TraceEvent &
    event(std::size_t i) const
    {
        return events[i];
    }

  private:
    explicit TraceRing(std::size_t capacity) : events(capacity) {}

    static std::atomic<TraceRing *> g_active;

    std::vector<TraceEvent> events;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> droppedCount{0};
};

/**
 * Record a completed span into the active ring, if any. The cheap
 * always-on entry point used by ScopedPhase and the checkpoint
 * writer.
 */
inline void
recordSpan(const char *name, const char *cat, std::uint64_t start_ns,
           std::uint64_t dur_ns) noexcept
{
    if (TraceRing *ring = TraceRing::active())
        ring->record(name, cat, start_ns, dur_ns);
}

/** RAII span: times its scope and records on destruction. */
class TraceSpan
{
  public:
    TraceSpan(const char *name, const char *cat) noexcept
        : _name(name), _cat(cat), startNs(base::nowNsSinceStart())
    {
    }

    ~TraceSpan()
    {
        recordSpan(_name, _cat, startNs,
                   base::nowNsSinceStart() - startNs);
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    const char *_name;
    const char *_cat;
    std::uint64_t startNs;
};

/**
 * Serialize the active ring as Chrome trace_event JSON ("traceEvents"
 * array of complete events, ts/dur in microseconds) plus an
 * "otherData" block reporting capacity, stored and dropped counts.
 * Returns false (with @p error filled) on I/O failure or when
 * tracing was never enabled.
 */
bool exportTrace(const std::string &path,
                 std::string *error = nullptr);

} // namespace marlin::obs

#endif // MARLIN_OBS_TRACE_HH
