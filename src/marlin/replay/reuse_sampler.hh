/**
 * @file
 * AccMER-style reuse sampler (PAPERS.md): the sum-tree prioritized
 * sampler fused with locality-run expansion and a reuse window.
 *
 * Priorities still come from the PER sum tree, but each stratified
 * reference expands into a contiguous locality run (the cache-dense
 * access pattern the locality sampler buys), and the resulting plan
 * is *reused* for reuseWindow consecutive updates before the tree
 * is consulted again. Reused plans consume no RNG draws, so a run
 * that mixes fresh and reused plans stays deterministic and
 * resumable: the cached plan and its age are checkpointed.
 */

#ifndef MARLIN_REPLAY_REUSE_SAMPLER_HH
#define MARLIN_REPLAY_REUSE_SAMPLER_HH

#include "marlin/replay/prioritized_sampler.hh"

namespace marlin::replay
{

/** AccMER knobs on top of the PER configuration. */
struct ReuseConfig
{
    /** Plans served per fresh sum-tree draw (1 = no reuse). */
    std::size_t reuseWindow = 4;
    /** Contiguous transitions gathered per sum-tree reference. */
    std::size_t runLength = 8;
};

/** Prioritized sampler with locality runs and batch reuse. */
class ReuseSampler : public PrioritizedSampler
{
  public:
    ReuseSampler(PerConfig per_config, ReuseConfig reuse_config);

    std::string name() const override { return "accmer"; }

    void planInto(BufferIndex buffer_size, std::size_t batch,
                  Rng &rng, IndexPlan &out) override;

    void saveState(std::ostream &os) const override;
    void loadState(std::istream &is) override;

    const ReuseConfig &reuseConfig() const { return _reuse; }

    /** Plans served from the cache since the last fresh draw. */
    std::size_t plansSinceDraw() const { return planAge; }

  private:
    /** Draw a fresh plan from the sum tree into the cache. */
    void drawFresh(BufferIndex buffer_size, std::size_t batch,
                   Rng &rng);

    ReuseConfig _reuse;
    /** Cached plan served while the reuse window is open. */
    IndexPlan cached;
    /** One past the highest cached index (validity bound). */
    BufferIndex cachedLimit = 0;
    /** Plans served from the cache (0 = cache empty/expired). */
    std::size_t planAge = 0;
};

} // namespace marlin::replay

#endif // MARLIN_REPLAY_REUSE_SAMPLER_HH
