#include "marlin/core/matd3.hh"

#include <algorithm>

#include "marlin/base/serialize.hh"
#include "marlin/numeric/ops.hh"

namespace marlin::core
{

using profile::Phase;
using profile::ScopedPhase;

Matd3Trainer::Matd3Trainer(std::vector<std::size_t> obs_dims,
                           std::size_t act_dim, TrainConfig config,
                           SamplerFactory sampler_factory)
    : CtdeTrainerBase(std::move(obs_dims), act_dim, std::move(config),
                      std::move(sampler_factory), true),
      criticSteps(numAgents(), 0)
{
}

void
Matd3Trainer::targetNextActionsInto(
    const std::vector<AgentBatch> &batches, Rng &noise_rng,
    std::vector<Matrix> &out)
{
    const bool discrete =
        _config.actionMode == ActionMode::Discrete;
    out.resize(batches.size());
    for (std::size_t j = 0; j < batches.size(); ++j) {
        Matrix &a = out[j];
        nets[j]->targetActor.forward(batches[j].nextObs, a);
        // Target policy smoothing: clipped Gaussian noise on the
        // logits before the softmax relaxation (discrete), or on
        // the squashed action re-clamped to the action box
        // (continuous, as in TD3). Drawn from the updating agent's
        // private stream so the draw order never depends on how the
        // pool schedules the agent updates.
        for (std::size_t k = 0; k < a.size(); ++k) {
            Real noise = static_cast<Real>(
                noise_rng.gaussian(0.0, _config.targetNoiseStd));
            noise = std::clamp(noise, -_config.targetNoiseClip,
                               _config.targetNoiseClip);
            a.data()[k] += noise;
        }
        if (discrete) {
            numeric::softmaxRows(a);
        } else {
            numeric::clampInPlace(a, Real(-1), Real(1));
        }
    }
}

void
Matd3Trainer::updateAgent(std::size_t i,
                          const std::vector<AgentBatch> &batches,
                          UpdateWorkspace &ws,
                          profile::PhaseTimer &timer,
                          UpdateStats &stats)
{
    AgentNetworks &net = *nets[i];
    {
        ScopedPhase sp(timer, Phase::TargetQ);
        buildJointNextInto(batches, ws.nextActions, ws.concat,
                           ws.jointNext);
        // Clipped double-Q: the minimum of the twin target critics
        // counters over-estimation bias.
        net.targetCritic.forward(ws.jointNext, ws.qNext);
        net.targetCritic2->forward(ws.jointNext, ws.qNext2);
        Matrix &q1 = ws.qNext;
        for (std::size_t r = 0; r < q1.rows(); ++r)
            q1(r, 0) = std::min(q1(r, 0), ws.qNext2(r, 0));
        tdTargetInto(batches[i], q1, ws.y);
    }
    {
        ScopedPhase sp(timer, Phase::QPLoss);
        ++criticSteps[i];
        const bool update_actor =
            (criticSteps[i] % std::max<std::size_t>(
                                  1, _config.policyDelay)) == 0;
        const bool healthy =
            criticActorStep(i, batches, ws, update_actor, stats);
        if (update_actor && healthy)
            net.softUpdateTargets(_config.tau);
    }
}

void
Matd3Trainer::saveExtraState(std::ostream &os) const
{
    writeVector(os, criticSteps);
}

void
Matd3Trainer::loadExtraState(std::istream &is)
{
    const std::vector<StepCount> steps = readVector<StepCount>(is);
    if (steps.size() != criticSteps.size()) {
        fatal("checkpoint has %zu policy-delay counters, trainer "
              "has %zu",
              steps.size(), criticSteps.size());
    }
    criticSteps = steps;
}

} // namespace marlin::core
