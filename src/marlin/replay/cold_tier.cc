#include "marlin/replay/cold_tier.hh"

#include <algorithm>
#include <cerrno>
#include <cstddef>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "marlin/base/crc32.hh"
#include "marlin/base/logging.hh"
#include "marlin/obs/metrics.hh"

namespace marlin::replay
{

namespace
{

obs::Counter &
spilledCounter()
{
    static obs::Counter &c =
        obs::Registry::instance().counter("replay.cold.spilled");
    return c;
}

obs::Counter &
spilledBytesCounter()
{
    static obs::Counter &c =
        obs::Registry::instance().counter("replay.cold.bytes");
    return c;
}

} // namespace

std::uint32_t
ColdSegmentHeader::computeCrc() const
{
    // Guard everything up to the crc field itself.
    return marlin::crc32(this, offsetof(ColdSegmentHeader, crc));
}

MmapColdTier::MmapColdTier(std::string dir, std::size_t shard_index,
                           std::size_t shard_count,
                           std::size_t stride_scalars,
                           BufferIndex slots,
                           BufferIndex segment_slots)
    : _dir(std::move(dir)), shardIdx(shard_index),
      shardTotal(shard_count), stride(stride_scalars), _slots(slots),
      segSlots(segment_slots)
{
    MARLIN_ASSERT(stride > 0, "cold tier needs a record stride");
    MARLIN_ASSERT(_slots > 0, "cold tier needs slots");
    MARLIN_ASSERT(segSlots > 0, "cold tier needs segment slots");
    const std::size_t nsegs =
        static_cast<std::size_t>((_slots + segSlots - 1) / segSlots);
    segments = std::vector<Segment>(nsegs);
    // The directory must exist up front so a failed mkdir surfaces
    // at construction, not on the first spill mid-training.
    struct ::stat st;
    if (::stat(_dir.c_str(), &st) != 0) {
        if (::mkdir(_dir.c_str(), 0755) != 0 && errno != EEXIST)
            fatal("cold tier: cannot create %s: %s", _dir.c_str(),
                  std::strerror(errno));
    } else if (!S_ISDIR(st.st_mode)) {
        fatal("cold tier: %s is not a directory", _dir.c_str());
    }
}

MmapColdTier::~MmapColdTier()
{
    // Never abort out of a destructor (it may run during unwind): a
    // transient msync failure here downgrades to a warning.
    flush(/*fatal_on_error=*/false);
    for (Segment &seg : segments) {
        void *base = seg.base.load(std::memory_order_acquire);
        if (base != nullptr)
            ::munmap(base, seg.mapBytes);
        if (seg.fd >= 0)
            ::close(seg.fd);
    }
}

std::string
MmapColdTier::segmentPath(std::size_t seg) const
{
    char name[64];
    std::snprintf(name, sizeof(name),
                  "/shard-%04zu.seg-%05zu.mrcs", shardIdx, seg);
    return _dir + name;
}

Real *
MmapColdTier::recordPtr(void *base, BufferIndex slot_in_seg) const
{
    char *data = static_cast<char *>(base) + kHeaderBytes;
    return reinterpret_cast<Real *>(data) + slot_in_seg * stride;
}

void *
MmapColdTier::ensureMapped(std::size_t seg, bool create) const
{
    MARLIN_ASSERT(seg < segments.size(), "segment out of range");
    Segment &s = segments[seg];
    void *base = s.base.load(std::memory_order_acquire);
    if (base != nullptr)
        return base;

    std::lock_guard<std::mutex> lock(mapLock);
    base = s.base.load(std::memory_order_relaxed);
    if (base != nullptr)
        return base;

    const std::string path = segmentPath(seg);
    const BufferIndex first = static_cast<BufferIndex>(seg) * segSlots;
    const BufferIndex held = std::min(segSlots, _slots - first);
    const std::size_t bytes =
        kHeaderBytes + static_cast<std::size_t>(held) * stride *
                           sizeof(Real);

    int flags = O_RDWR;
    if (create)
        flags |= O_CREAT;
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) {
        if (!create)
            return nullptr; // Restore path reports this itself.
        fatal("cold tier: cannot open %s: %s", path.c_str(),
              std::strerror(errno));
    }
    // Sparse reservation: untouched record pages occupy no disk.
    if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0)
        fatal("cold tier: cannot size %s: %s", path.c_str(),
              std::strerror(errno));
    void *map = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                       MAP_SHARED, fd, 0);
    if (map == MAP_FAILED)
        fatal("cold tier: cannot map %s: %s", path.c_str(),
              std::strerror(errno));
    // Replay sampling is random access; tell readahead to stand
    // down so a 100M-transition sweep does not thrash page cache.
    ::madvise(static_cast<char *>(map) + kHeaderBytes,
              bytes - kHeaderBytes, MADV_RANDOM);

    ColdSegmentHeader hdr;
    std::memcpy(&hdr, map, sizeof(hdr));
    if (hdr.magic == ColdSegmentHeader::kMagic) {
        // Re-opened an existing segment (restore path): trust its
        // record count, geometry is re-checked by restore().
        s.records = hdr.records;
    } else {
        hdr = ColdSegmentHeader{};
        hdr.strideScalars = stride;
        hdr.segmentSlots = held;
        hdr.firstSlot = first;
        hdr.shardIndex = static_cast<std::uint32_t>(shardIdx);
        hdr.shardCount = static_cast<std::uint32_t>(shardTotal);
        hdr.records = 0;
        hdr.crc = hdr.computeCrc();
        std::memcpy(map, &hdr, sizeof(hdr));
    }

    s.fd = fd;
    s.mapBytes = bytes;
    s.base.store(map, std::memory_order_release);
    return map;
}

void
MmapColdTier::writeRecord(BufferIndex slot, const Real *rec)
{
    MARLIN_ASSERT(slot < _slots, "cold slot out of range");
    const std::size_t seg = static_cast<std::size_t>(slot / segSlots);
    void *base = ensureMapped(seg, /*create=*/true);
    std::memcpy(recordPtr(base, slot % segSlots), rec,
                stride * sizeof(Real));
    ++segments[seg].records;
    ++_spilled;
    spilledCounter().add();
    spilledBytesCounter().add(stride * sizeof(Real));
}

const Real *
MmapColdTier::readRecord(BufferIndex slot) const
{
    MARLIN_ASSERT(slot < _slots, "cold slot out of range");
    const std::size_t seg = static_cast<std::size_t>(slot / segSlots);
    void *base = ensureMapped(seg, /*create=*/true);
    return recordPtr(base, slot % segSlots);
}

void
MmapColdTier::flush(bool fatal_on_error) const
{
    for (std::size_t i = 0; i < segments.size(); ++i) {
        Segment &s = segments[i];
        void *base = s.base.load(std::memory_order_acquire);
        if (base == nullptr)
            continue;
        ColdSegmentHeader hdr;
        std::memcpy(&hdr, base, sizeof(hdr));
        hdr.records = s.records;
        hdr.crc = hdr.computeCrc();
        std::memcpy(base, &hdr, sizeof(hdr));
        if (::msync(base, s.mapBytes, MS_SYNC) != 0) {
            if (fatal_on_error)
                fatal("cold tier: msync failed on %s: %s",
                      segmentPath(i).c_str(), std::strerror(errno));
            warn("cold tier: msync failed on %s: %s",
                 segmentPath(i).c_str(), std::strerror(errno));
        }
    }
}

void
MmapColdTier::dropPageCache() const
{
    flush();
    for (Segment &s : segments) {
        void *base = s.base.load(std::memory_order_acquire);
        if (base == nullptr)
            continue;
        ::madvise(static_cast<char *>(base) + kHeaderBytes,
                  s.mapBytes - kHeaderBytes, MADV_DONTNEED);
    }
}

std::size_t
MmapColdTier::storageBytes() const
{
    std::size_t total = 0;
    for (const Segment &s : segments)
        if (s.base.load(std::memory_order_acquire) != nullptr)
            total += s.mapBytes;
    return total;
}

std::vector<std::uint64_t>
MmapColdTier::segmentRecords() const
{
    std::vector<std::uint64_t> out(segments.size(), 0);
    for (std::size_t i = 0; i < segments.size(); ++i)
        out[i] = segments[i].records;
    return out;
}

StoreLoadResult
MmapColdTier::validateManifest(
    const std::vector<std::uint64_t> &segment_records) const
{
    if (segment_records.size() != segments.size())
        return StoreLoadResult::fail(
            StoreLoadError::ShapeMismatch,
            "cold-tier manifest segment count mismatch");
    // ensureMapped adopts the on-disk record count as a side effect
    // of first mapping a segment; snapshot and restore the counters
    // so validation commits nothing regardless of outcome.
    std::vector<std::uint64_t> prior(segments.size());
    for (std::size_t i = 0; i < segments.size(); ++i)
        prior[i] = segments[i].records;
    StoreLoadResult result = StoreLoadResult::ok();
    for (std::size_t i = 0; i < segments.size(); ++i) {
        if (segment_records[i] == 0)
            continue; // Segment never touched; file need not exist.
        void *base = ensureMapped(i, /*create=*/false);
        if (base == nullptr) {
            result = StoreLoadResult::fail(
                StoreLoadError::IoError,
                "missing cold segment " + segmentPath(i));
            break;
        }
        ColdSegmentHeader hdr;
        std::memcpy(&hdr, base, sizeof(hdr));
        if (hdr.magic != ColdSegmentHeader::kMagic ||
            hdr.version != ColdSegmentHeader::kVersion) {
            result = StoreLoadResult::fail(
                StoreLoadError::Corrupt,
                "bad magic/version in " + segmentPath(i));
            break;
        }
        if (hdr.crc != hdr.computeCrc()) {
            result = StoreLoadResult::fail(
                StoreLoadError::Corrupt,
                "header CRC mismatch in " + segmentPath(i));
            break;
        }
        const BufferIndex first =
            static_cast<BufferIndex>(i) * segSlots;
        const BufferIndex held = std::min(segSlots, _slots - first);
        if (hdr.strideScalars != stride ||
            hdr.segmentSlots != held || hdr.firstSlot != first ||
            hdr.shardIndex != shardIdx ||
            hdr.shardCount != shardTotal) {
            result = StoreLoadResult::fail(
                StoreLoadError::ShapeMismatch,
                "geometry mismatch in " + segmentPath(i));
            break;
        }
    }
    for (std::size_t i = 0; i < segments.size(); ++i)
        segments[i].records = prior[i];
    return result;
}

void
MmapColdTier::adoptManifest(
    std::uint64_t spilled,
    const std::vector<std::uint64_t> &segment_records)
{
    MARLIN_ASSERT(segment_records.size() == segments.size(),
                  "adoptManifest without a passing validateManifest");
    for (std::size_t i = 0; i < segments.size(); ++i)
        segments[i].records = segment_records[i];
    _spilled = spilled;
}

StoreLoadResult
MmapColdTier::restore(std::uint64_t spilled,
                      const std::vector<std::uint64_t> &segment_records)
{
    const StoreLoadResult result = validateManifest(segment_records);
    if (!result)
        return result;
    adoptManifest(spilled, segment_records);
    return StoreLoadResult::ok();
}

} // namespace marlin::replay
