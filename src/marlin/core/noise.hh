/**
 * @file
 * Exploration helpers for discrete particle-env actions.
 */

#ifndef MARLIN_CORE_NOISE_HH
#define MARLIN_CORE_NOISE_HH

#include <cstddef>

#include "marlin/base/random.hh"
#include "marlin/base/types.hh"

namespace marlin::core
{

/**
 * Linear epsilon schedule: epsilon(e) interpolates from start to end
 * over decayEpisodes episodes, then stays at end.
 */
class EpsilonSchedule
{
  public:
    EpsilonSchedule(Real start, Real end, std::size_t decay_episodes)
        : _start(start), _end(end), decayEpisodes(decay_episodes)
    {
    }

    /** Epsilon for episode @p episode. */
    Real value(std::size_t episode) const;

  private:
    Real _start;
    Real _end;
    std::size_t decayEpisodes;
};

/**
 * Ornstein-Uhlenbeck process, provided for continuous-action MARL
 * variants: x += theta * (mu - x) * dt + sigma * sqrt(dt) * N(0,1).
 */
class OrnsteinUhlenbeckNoise
{
  public:
    OrnsteinUhlenbeckNoise(std::size_t dim, Real theta = Real(0.15),
                           Real sigma = Real(0.2), Real dt = Real(1e-2));

    /** Advance the process and return the current sample. */
    const std::vector<Real> &step(Rng &rng);

    /** Reset the state to mu (zero). */
    void reset();

    const std::vector<Real> &state() const { return x; }

    /** Restore a state snapshot (checkpoint resume). */
    void setState(std::vector<Real> state);

  private:
    Real theta;
    Real sigma;
    Real dt;
    std::vector<Real> x;
};

} // namespace marlin::core

#endif // MARLIN_CORE_NOISE_HH
