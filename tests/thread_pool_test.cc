/**
 * @file
 * Unit tests for marlin/base/thread_pool: range coverage under every
 * pool size, static-partition determinism, inline degenerate cases,
 * exception propagation, nested-call rejection, and the global pool
 * configuration used by MARLIN_THREADS / --threads.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "marlin/base/thread_pool.hh"

namespace marlin::base
{
namespace
{

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    for (std::size_t threads : {1u, 2u, 3u, 4u, 8u}) {
        ThreadPool pool(threads);
        for (std::size_t range : {1u, 7u, 64u, 1000u}) {
            std::vector<std::atomic<int>> hits(range);
            for (auto &h : hits)
                h.store(0);
            pool.parallelFor(0, range, 1,
                             [&](std::size_t b, std::size_t e) {
                                 for (std::size_t i = b; i < e; ++i)
                                     hits[i].fetch_add(1);
                             });
            for (std::size_t i = 0; i < range; ++i)
                EXPECT_EQ(hits[i].load(), 1)
                    << "threads=" << threads << " range=" << range
                    << " i=" << i;
        }
    }
}

TEST(ThreadPool, OffsetRangeAndGrainAlignment)
{
    ThreadPool pool(4);
    // Chunks must be grain-aligned (except the tail) and disjoint.
    std::vector<std::atomic<int>> hits(100);
    for (auto &h : hits)
        h.store(0);
    std::atomic<bool> misaligned{false};
    pool.parallelFor(10, 100, 16,
                     [&](std::size_t b, std::size_t e) {
                         if ((b - 10) % 16 != 0)
                             misaligned.store(true);
                         for (std::size_t i = b; i < e; ++i)
                             hits[i].fetch_add(1);
                     });
    EXPECT_FALSE(misaligned.load());
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_EQ(hits[i].load(), 0);
    for (std::size_t i = 10; i < 100; ++i)
        EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, EmptyRangeNeverInvokes)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.parallelFor(5, 5, 1,
                     [&](std::size_t, std::size_t) { ++calls; });
    pool.parallelFor(9, 3, 1,
                     [&](std::size_t, std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, GrainLargerThanRangeRunsInlineAsOneChunk)
{
    ThreadPool pool(8);
    int calls = 0; // Non-atomic: single inline invocation expected.
    std::size_t saw_begin = 99, saw_end = 0;
    pool.parallelFor(2, 6, 100,
                     [&](std::size_t b, std::size_t e) {
                         ++calls;
                         saw_begin = b;
                         saw_end = e;
                     });
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(saw_begin, 2u);
    EXPECT_EQ(saw_end, 6u);
}

TEST(ThreadPool, SingleThreadPoolSpawnsNothingAndRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.numThreads(), 1u);
    const auto caller = std::this_thread::get_id();
    std::vector<std::thread::id> seen;
    pool.parallelFor(0, 4, 1, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i)
            seen.push_back(std::this_thread::get_id());
    });
    ASSERT_EQ(seen.size(), 4u);
    for (const auto &id : seen)
        EXPECT_EQ(id, caller);
}

TEST(ThreadPool, ExceptionPropagatesToCaller)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(0, 64, 1,
                         [&](std::size_t b, std::size_t) {
                             if (b >= 16)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);
    // The pool must stay usable after an exceptional dispatch.
    std::atomic<int> sum{0};
    pool.parallelFor(0, 10, 1, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i)
            sum.fetch_add(static_cast<int>(i));
    });
    EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, ExceptionPropagatesFromInlinePath)
{
    ThreadPool pool(1);
    EXPECT_THROW(pool.parallelFor(0, 4, 1,
                                  [](std::size_t, std::size_t) {
                                      throw std::runtime_error("x");
                                  }),
                 std::runtime_error);
}

TEST(ThreadPool, NestedCallIsRejectedAndRunsInline)
{
    ThreadPool pool(4);
    // A worker re-entering parallelFor must not deadlock on the
    // pool's own capacity: the nested dispatch is rejected and runs
    // serially on that worker. Inner counters are per-outer-index,
    // so disjoint writes need no atomics.
    std::vector<int> inner_calls(8, 0);
    std::vector<int> inner_on_worker(8, 0);
    std::atomic<int> outer_calls{0};
    pool.parallelFor(0, 8, 1, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
            ++outer_calls;
            EXPECT_TRUE(ThreadPool::inWorker());
            pool.parallelFor(
                0, 4, 1, [&, i](std::size_t ib, std::size_t ie) {
                    inner_calls[i] +=
                        static_cast<int>(ie - ib);
                    inner_on_worker[i] +=
                        ThreadPool::inWorker() ? 1 : 0;
                });
        }
    });
    EXPECT_EQ(outer_calls.load(), 8);
    for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_EQ(inner_calls[i], 4);
        // Inline rejection: one invocation covering the whole
        // range, still flagged as worker context.
        EXPECT_EQ(inner_on_worker[i], 1);
    }
}

TEST(ThreadPool, InWorkerFalseOutsideDispatch)
{
    EXPECT_FALSE(ThreadPool::inWorker());
    ThreadPool pool(2);
    pool.parallelFor(0, 2, 1, [](std::size_t, std::size_t) {});
    EXPECT_FALSE(ThreadPool::inWorker());
}

TEST(ThreadPool, StaticPartitionIsAFunctionOfShapeOnly)
{
    // Same (range, grain, threads) must yield the same chunk
    // boundaries on every dispatch — scheduling may vary, the
    // partition may not.
    ThreadPool pool(4);
    auto boundaries = [&] {
        std::mutex m;
        std::vector<std::pair<std::size_t, std::size_t>> chunks;
        pool.parallelFor(0, 1000, 8,
                         [&](std::size_t b, std::size_t e) {
                             std::lock_guard<std::mutex> lock(m);
                             chunks.emplace_back(b, e);
                         });
        std::sort(chunks.begin(), chunks.end());
        return chunks;
    };
    const auto first = boundaries();
    for (int rep = 0; rep < 10; ++rep)
        EXPECT_EQ(boundaries(), first);
}

TEST(ThreadPool, GlobalPoolResizeAndQuery)
{
    ThreadPool::setGlobalThreads(3);
    EXPECT_EQ(ThreadPool::globalThreads(), 3u);
    EXPECT_EQ(ThreadPool::global().numThreads(), 3u);
    ThreadPool::setGlobalThreads(1);
    EXPECT_EQ(ThreadPool::globalThreads(), 1u);
    std::atomic<int> sum{0};
    ThreadPool::global().parallelFor(
        0, 5, 1, [&](std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i)
                sum.fetch_add(static_cast<int>(i) + 1);
        });
    EXPECT_EQ(sum.load(), 15);
    // Restore auto sizing for other tests in this binary.
    ThreadPool::setGlobalThreads(0);
}

TEST(ThreadPool, ManyDispatchesStress)
{
    // Exercises wake/sleep cycling and job retirement; under
    // -DMARLIN_TSAN=ON this is the canary for lifetime races.
    ThreadPool pool(4);
    std::uint64_t expect = 0;
    std::atomic<std::uint64_t> got{0};
    for (std::size_t rep = 0; rep < 200; ++rep) {
        const std::size_t range = 1 + (rep % 37);
        expect += range;
        pool.parallelFor(0, range, 1,
                         [&](std::size_t b, std::size_t e) {
                             got.fetch_add(e - b);
                         });
    }
    EXPECT_EQ(got.load(), expect);
}

} // namespace
} // namespace marlin::base
