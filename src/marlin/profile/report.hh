/**
 * @file
 * Rendering of phase breakdowns in the shape of the paper's figures.
 */

#ifndef MARLIN_PROFILE_REPORT_HH
#define MARLIN_PROFILE_REPORT_HH

#include <string>

#include "marlin/profile/timer.hh"

namespace marlin::profile
{

/** Figure-2-style top-level breakdown of one training run. */
struct TopLevelBreakdown
{
    double actionSelectionPct = 0;
    double updateAllTrainersPct = 0;
    double otherPct = 0;
    double totalSeconds = 0;
};

/** Figure-3-style breakdown within update-all-trainers. */
struct UpdateBreakdown
{
    double samplingPct = 0;
    double targetQPct = 0;
    double qpLossPct = 0;
    double layoutReorgPct = 0;
    double totalSeconds = 0;
};

/** Compute the Figure-2 percentages from a timer. */
TopLevelBreakdown topLevelBreakdown(const PhaseTimer &timer);

/** Compute the Figure-3 percentages from a timer. */
UpdateBreakdown updateBreakdown(const PhaseTimer &timer);

/** One-line rendering of a top-level breakdown. */
std::string formatTopLevel(const TopLevelBreakdown &b);

/** One-line rendering of an update breakdown. */
std::string formatUpdate(const UpdateBreakdown &b);

/** Full multi-line phase table for a timer. */
std::string formatPhaseTable(const PhaseTimer &timer);

/**
 * CSV rendering of a timer ("phase,seconds,count" rows with a
 * header), for piping bench output into plotting scripts.
 */
std::string formatPhaseCsv(const PhaseTimer &timer);

} // namespace marlin::profile

#endif // MARLIN_PROFILE_REPORT_HH
