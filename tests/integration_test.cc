/**
 * @file
 * Integration tests: cross-module behaviour — determinism of whole
 * training runs, learning progress on the cooperative task, sampler
 * equivalence through the full trainer, and trace->memsim plumbing.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "marlin/marlin.hh"

namespace marlin
{
namespace
{

std::vector<std::size_t>
dimsOf(const env::Environment &environment)
{
    std::vector<std::size_t> dims;
    for (std::size_t i = 0; i < environment.numAgents(); ++i)
        dims.push_back(environment.obsDim(i));
    return dims;
}

core::TrainConfig
testConfig()
{
    core::TrainConfig c;
    c.batchSize = 64;
    c.bufferCapacity = 8192;
    c.warmupTransitions = 128;
    c.updateEvery = 50;
    c.hiddenDims = {32, 32};
    c.seed = 11;
    return c;
}

TEST(Integration, TrainingIsBitReproducibleUnderFixedSeed)
{
    auto run_once = [] {
        auto environment = env::makeCooperativeNavigationEnv(3, 77);
        auto config = testConfig();
        core::MaddpgTrainer trainer(
            dimsOf(*environment), environment->actionDim(), config,
            [] { return std::make_unique<replay::UniformSampler>(); });
        core::TrainLoop loop(*environment, trainer, config);
        return loop.run(15).episodeRewards;
    };
    const auto a = run_once();
    const auto b = run_once();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << "episode " << i;
}

TEST(Integration, SeedsProduceDifferentTrajectories)
{
    auto run_with_seed = [](std::uint64_t seed) {
        auto environment = env::makeCooperativeNavigationEnv(3, seed);
        auto config = testConfig();
        config.seed = seed;
        core::MaddpgTrainer trainer(
            dimsOf(*environment), environment->actionDim(), config,
            [] { return std::make_unique<replay::UniformSampler>(); });
        core::TrainLoop loop(*environment, trainer, config);
        return loop.run(5).episodeRewards;
    };
    EXPECT_NE(run_with_seed(1), run_with_seed(2));
}

TEST(Integration, MaddpgLearnsCooperativeNavigation)
{
    // A longer run on CN-3 must improve the mean episode reward
    // between the first and last quintile. The margin is loose: the
    // point is "learning happens", not a benchmark.
    auto environment = env::makeCooperativeNavigationEnv(3, 123);
    auto config = testConfig();
    config.epsilonDecayEpisodes = 1000;
    core::MaddpgTrainer trainer(
        dimsOf(*environment), environment->actionDim(), config,
        [] { return std::make_unique<replay::UniformSampler>(); });
    core::TrainLoop loop(*environment, trainer, config);
    auto result = loop.run(2000);

    const std::size_t q = result.episodeRewards.size() / 5;
    const double first =
        std::accumulate(result.episodeRewards.begin(),
                        result.episodeRewards.begin() + q, 0.0) /
        q;
    const double last =
        std::accumulate(result.episodeRewards.end() - q,
                        result.episodeRewards.end(), 0.0) /
        q;
    EXPECT_GT(last, first)
        << "first-quintile mean " << first << " vs last " << last;
}

TEST(Integration, LocalitySamplerTrainsComparably)
{
    // Cache-aware sampling must keep training functional (finite
    // losses, rewards in a sane band) — the paper's Figure 10 claim
    // at smoke-test scale.
    auto environment = env::makeCooperativeNavigationEnv(3, 55);
    auto config = testConfig();
    core::MaddpgTrainer trainer(
        dimsOf(*environment), environment->actionDim(), config, [] {
            return std::make_unique<replay::LocalityAwareSampler>(
                replay::LocalityConfig{16, 4});
        });
    core::TrainLoop loop(*environment, trainer, config);
    auto result = loop.run(60);
    for (Real r : result.episodeRewards)
        ASSERT_TRUE(std::isfinite(r));
    EXPECT_GT(result.updateCalls, 0u);
}

TEST(Integration, InfoPrioritizedTrainsEndToEnd)
{
    auto environment = env::makeCooperativeNavigationEnv(3, 56);
    auto config = testConfig();
    core::MaddpgTrainer trainer(
        dimsOf(*environment), environment->actionDim(), config, [&] {
            replay::PerConfig per;
            per.capacity = config.bufferCapacity;
            return std::make_unique<
                replay::InfoPrioritizedLocalitySampler>(per);
        });
    core::TrainLoop loop(*environment, trainer, config);
    auto result = loop.run(60);
    for (Real r : result.episodeRewards)
        ASSERT_TRUE(std::isfinite(r));
    EXPECT_GT(result.updateCalls, 0u);
}

TEST(Integration, InterleavedBackendMatchesPerAgentNumerics)
{
    // With identical seeds and the same sampler index stream, the
    // interleaved store must deliver identical batches, hence a
    // bit-identical training trajectory.
    auto run_backend = [](core::SamplingBackend backend) {
        auto environment = env::makeCooperativeNavigationEnv(3, 88);
        auto config = testConfig();
        config.backend = backend;
        core::MaddpgTrainer trainer(
            dimsOf(*environment), environment->actionDim(), config,
            [] { return std::make_unique<replay::UniformSampler>(); });
        core::TrainLoop loop(*environment, trainer, config);
        return loop.run(12).episodeRewards;
    };
    const auto per_agent =
        run_backend(core::SamplingBackend::PerAgent);
    const auto interleaved =
        run_backend(core::SamplingBackend::Interleaved);
    ASSERT_EQ(per_agent.size(), interleaved.size());
    for (std::size_t i = 0; i < per_agent.size(); ++i)
        EXPECT_EQ(per_agent[i], interleaved[i]) << "episode " << i;
}

TEST(Integration, GatherTraceFeedsMemsim)
{
    // Wire a real gather's trace into the cache model and check the
    // locality sampler produces fewer simulated misses than uniform
    // on the same buffer — the mechanism behind Figures 4 and 8.
    replay::MultiAgentBuffer buf({{16, 5}}, 1 << 15);
    Rng rng(9);
    std::vector<Real> obs(16), next(16);
    std::vector<Real> act(5, 0);
    act[0] = 1;
    for (int t = 0; t < (1 << 15); ++t) {
        for (auto &v : obs)
            v = static_cast<Real>(rng.uniform(-1, 1));
        next = obs;
        buf.agent(0).add(obs, act, 0, next, false);
    }

    auto measure = [&](replay::Sampler &sampler) {
        Rng srng(10);
        auto preset = memsim::makePlatform(
            memsim::PlatformId::Threadripper3975WX);
        memsim::CacheHierarchy hierarchy(preset.hierarchy);
        replay::AccessTrace trace;
        std::vector<replay::AgentBatch> batches;
        for (int rep = 0; rep < 8; ++rep) {
            auto plan = sampler.plan(buf.size(), 1024, srng);
            replay::gatherAllAgents(buf, plan, batches, &trace);
        }
        auto result = memsim::replayTrace(hierarchy, trace);
        return result.stats.l1.misses;
    };

    replay::UniformSampler uniform;
    replay::LocalityAwareSampler locality({64, 16});
    const auto uniform_misses = measure(uniform);
    const auto locality_misses = measure(locality);
    EXPECT_LT(locality_misses, uniform_misses);
}

TEST(Integration, Matd3TrainsOnPredatorPrey)
{
    auto environment = env::makePredatorPreyEnv(3, 99);
    auto config = testConfig();
    core::Matd3Trainer trainer(
        dimsOf(*environment), environment->actionDim(), config,
        [] { return std::make_unique<replay::UniformSampler>(); });
    core::TrainLoop loop(*environment, trainer, config);
    auto result = loop.run(40);
    for (Real r : result.episodeRewards)
        ASSERT_TRUE(std::isfinite(r));
    EXPECT_GT(result.updateCalls, 0u);
    EXPECT_GT(result.timer.updateAllTrainersSeconds(), 0.0);
}

} // namespace
} // namespace marlin
