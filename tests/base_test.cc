/**
 * @file
 * Unit tests for marlin/base: string utilities and the RNG.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "marlin/base/random.hh"
#include "marlin/base/string_utils.hh"

namespace marlin
{
namespace
{

TEST(StringUtils, CsprintfFormats)
{
    EXPECT_EQ(csprintf("a=%d b=%s", 3, "x"), "a=3 b=x");
    EXPECT_EQ(csprintf("%.2f", 1.5), "1.50");
    EXPECT_EQ(csprintf("empty"), "empty");
}

TEST(StringUtils, CsprintfLongOutput)
{
    std::string big(500, 'y');
    EXPECT_EQ(csprintf("%s", big.c_str()).size(), 500u);
}

TEST(StringUtils, TokenizeDropsEmptyFields)
{
    auto t = tokenize("a,,b,c,", ',');
    ASSERT_EQ(t.size(), 3u);
    EXPECT_EQ(t[0], "a");
    EXPECT_EQ(t[1], "b");
    EXPECT_EQ(t[2], "c");
}

TEST(StringUtils, TokenizeEmptyString)
{
    EXPECT_TRUE(tokenize("", ',').empty());
}

TEST(StringUtils, FormatBytes)
{
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_EQ(formatBytes(2048), "2.00 KiB");
    EXPECT_EQ(formatBytes(3 * 1024 * 1024), "3.00 MiB");
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformBoundsRespected)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-2.0, 3.0);
        EXPECT_GE(u, -2.0);
        EXPECT_LT(u, 3.0);
    }
}

TEST(Rng, RandintCoversRangeUniformly)
{
    Rng rng(11);
    constexpr std::uint64_t n = 10;
    std::array<int, n> counts{};
    constexpr int draws = 100000;
    for (int i = 0; i < draws; ++i)
        ++counts[rng.randint(n)];
    // Chi-squared against uniform with 9 dof; 99.9% critical ~27.9.
    double chi2 = 0;
    const double expected = draws / static_cast<double>(n);
    for (int c : counts) {
        const double d = c - expected;
        chi2 += d * d / expected;
    }
    EXPECT_LT(chi2, 27.9);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    double sum = 0, sum_sq = 0;
    constexpr int draws = 200000;
    for (int i = 0; i < draws; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sum_sq += g * g;
    }
    const double mean = sum / draws;
    const double var = sum_sq / draws - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, GaussianScaled)
{
    Rng rng(17);
    double sum = 0;
    constexpr int draws = 100000;
    for (int i = 0; i < draws; ++i)
        sum += rng.gaussian(5.0, 0.5);
    EXPECT_NEAR(sum / draws, 5.0, 0.02);
}

TEST(Rng, SampleIndicesWithinBounds)
{
    Rng rng(19);
    auto idx = rng.sampleIndices(1000, 256);
    ASSERT_EQ(idx.size(), 256u);
    for (auto i : idx)
        EXPECT_LT(i, 1000u);
}

TEST(Rng, SampleIndicesDistinctAreDistinct)
{
    Rng rng(23);
    auto idx = rng.sampleIndicesDistinct(100, 50);
    std::set<BufferIndex> unique(idx.begin(), idx.end());
    EXPECT_EQ(unique.size(), 50u);
    for (auto i : idx)
        EXPECT_LT(i, 100u);
}

TEST(Rng, SampleIndicesDistinctFullPopulation)
{
    Rng rng(29);
    auto idx = rng.sampleIndicesDistinct(16, 16);
    std::set<BufferIndex> unique(idx.begin(), idx.end());
    EXPECT_EQ(unique.size(), 16u);
}

TEST(SplitMix64, KnownSequenceIsStable)
{
    SplitMix64 a(123), b(123);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), 0u);
}

} // namespace
} // namespace marlin
