#include "marlin/numeric/gemm.hh"

#include <cstring>
#include <vector>

#include "marlin/base/compiler.hh"
#include "marlin/base/thread_pool.hh"
#include "marlin/base/workspace.hh"
#include "marlin/numeric/kernels.hh"

namespace marlin::numeric
{

namespace
{

// Block sizes tuned for ~32 KiB L1d with Real = float.
constexpr std::size_t blockM = 64;
constexpr std::size_t blockK = 64;
// gemmNT j-tile: with blockK coefficient rows live, a blockK x
// blockN packed-B^T tile is 128 KiB — L2-resident and reused across
// a full row block — while each c-row chunk (2 KiB) stays in L1.
constexpr std::size_t blockN = 512;

// Products below this FLOP count (2*m*k*n) run serially: the pool
// dispatch costs more than the arithmetic. Single-row action
// selection stays inline; mini-batch forward/backward crosses it.
constexpr std::size_t parallelFlopThreshold = 1u << 18;

/**
 * Whether a product of this size should fan out. The partition is
 * over disjoint output rows, and within a row every kernel below
 * performs the same additions in the same order as its serial loop,
 * so the result is bit-identical for any thread count.
 */
bool
useParallel(base::ThreadPool &pool, std::size_t m, std::size_t k,
            std::size_t n)
{
    return pool.numThreads() > 1 && !base::ThreadPool::inWorker() &&
           2 * m * k * n >= parallelFlopThreshold;
}

/**
 * Blocked i-k kernel over output rows [i_begin, i_end). The inner
 * j loop lives in the ISA-dispatched gemmBlock kernel; each C
 * element still accumulates its k terms in ascending order, so the
 * result is bit-identical for any thread count and any ISA. The
 * skip_zeros flag pays off because forward inputs carry one-hot
 * action blocks and ReLU activations.
 */
void
gemmRows(const kernels::KernelTable &kt, const Matrix &a,
         const Matrix &b, Matrix &c, std::size_t i_begin,
         std::size_t i_end)
{
    const std::size_t k = a.cols(), n = b.cols();
    for (std::size_t i0 = i_begin; i0 < i_end; i0 += blockM) {
        const std::size_t i1 = std::min(i0 + blockM, i_end);
        for (std::size_t k0 = 0; k0 < k; k0 += blockK) {
            const std::size_t k1 = std::min(k0 + blockK, k);
            for (std::size_t i = i0; i < i1; ++i)
                kt.gemmBlock(a.row(i) + k0, 1, b.row(k0), n,
                             k1 - k0, c.row(i), n, true);
        }
    }
}

void
gemmKernel(const Matrix &a, const Matrix &b, Matrix &c, bool accumulate)
{
    const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
    MARLIN_ASSERT(b.rows() == k, "gemm inner dimension mismatch");
    if (!accumulate)
        c.resize(m, n);
    MARLIN_ASSERT(c.rows() == m && c.cols() == n,
                  "gemm output shape mismatch");

    // One table for the whole product, so a concurrent setIsa()
    // cannot mix ISAs across row partitions.
    const kernels::KernelTable &kt = kernels::active();
    base::ThreadPool &pool = base::ThreadPool::global();
    if (!useParallel(pool, m, k, n)) {
        gemmRows(kt, a, b, c, 0, m);
        return;
    }
    // Partition whole row blocks: chunks own disjoint C rows and
    // run the identical per-row loop nest as the serial path.
    const std::size_t row_blocks = (m + blockM - 1) / blockM;
    pool.parallelFor(0, row_blocks, 1,
                     [&](std::size_t b0, std::size_t b1) {
                         gemmRows(kt, a, b, c, b0 * blockM,
                                  std::min(b1 * blockM, m));
                     });
}

} // namespace

void
gemm(const Matrix &a, const Matrix &b, Matrix &c)
{
    gemmKernel(a, b, c, false);
}

void
gemmAcc(const Matrix &a, const Matrix &b, Matrix &c)
{
    gemmKernel(a, b, c, true);
}

namespace
{

/** gemmTN restricted to output rows [i_begin, i_end). */
void
gemmTNRows(const kernels::KernelTable &kt, const Matrix &a,
           const Matrix &b, Matrix &c, std::size_t i_begin,
           std::size_t i_end)
{
    const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
    // C(m,n) = A(k,m)^T B(k,n). Per output row i the coefficients
    // are column i of A (stride m), handed to gemmBlock in blockK
    // slabs so a blockK x n slice of B stays cache-resident across
    // all rows of the partition. kk slabs ascend and gemmBlock
    // accumulates ascending within a slab, so each C element sums
    // its terms in ascending-kk order — the same order for every
    // row partition, hence bit-identical under any thread count.
    // A here is a cached forward input (ReLU activations / one-hot
    // action blocks), so the zero skip earns its branch.
    for (std::size_t k0 = 0; k0 < k; k0 += blockK) {
        const std::size_t k1 = std::min(k0 + blockK, k);
        for (std::size_t i = i_begin; i < i_end; ++i)
            kt.gemmBlock(a.data() + k0 * m + i, m, b.row(k0), n,
                         k1 - k0, c.row(i), n, true);
    }
}

} // namespace

void
gemmTN(const Matrix &a, const Matrix &b, Matrix &c)
{
    const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
    MARLIN_ASSERT(b.rows() == k, "gemmTN inner dimension mismatch");
    c.resize(m, n);

    const kernels::KernelTable &kt = kernels::active();
    base::ThreadPool &pool = base::ThreadPool::global();
    if (!useParallel(pool, m, k, n)) {
        gemmTNRows(kt, a, b, c, 0, m);
        return;
    }
    pool.parallelFor(0, m, blockM,
                     [&](std::size_t i0, std::size_t i1) {
                         gemmTNRows(kt, a, b, c, i0, i1);
                     });
}

namespace
{

/**
 * gemmNT restricted to output rows [i_begin, i_end), reading B^T
 * from the packed k x n buffer @p bt.
 *
 * C(i,j) = dot(A.row(i), B.row(j)) mathematically, but the loops
 * run vertically over j so the inner loop is the same ISA-dispatched
 * row kernel as gemm: for each kk, c[j] += a[kk] * bt[kk][j]. Each
 * C element accumulates its k terms in ascending-kk order — exactly
 * the order the sequential dot product uses — so the packed form is
 * bit-identical to the historical kernel while giving the vector
 * ISA contiguous rows to stream. Tiling (i by blockM, kk by blockK,
 * j by blockN) keeps a packed tile L2-resident across a row block
 * and each c-row chunk in L1; it never reorders the kk chain. Both
 * operands are dense gradients and weights, so the zero skip is off.
 */
void
gemmNTRows(const kernels::KernelTable &kt, const Matrix &a,
           const Real *bt, Matrix &c, std::size_t i_begin,
           std::size_t i_end)
{
    const std::size_t k = a.cols(), n = c.cols();
    for (std::size_t i0 = i_begin; i0 < i_end; i0 += blockM) {
        const std::size_t i1 = std::min(i0 + blockM, i_end);
        for (std::size_t k0 = 0; k0 < k; k0 += blockK) {
            const std::size_t k1 = std::min(k0 + blockK, k);
            for (std::size_t j0 = 0; j0 < n; j0 += blockN) {
                const std::size_t j1 = std::min(j0 + blockN, n);
                for (std::size_t i = i0; i < i1; ++i)
                    kt.gemmBlock(a.row(i) + k0, 1,
                                 bt + k0 * n + j0, n, k1 - k0,
                                 c.row(i) + j0, j1 - j0, false);
            }
        }
    }
}

} // namespace

void
gemmNT(const Matrix &a, const Matrix &b, Matrix &c)
{
    const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
    MARLIN_ASSERT(b.cols() == k, "gemmNT inner dimension mismatch");
    c.resize(m, n);
    if (m == 0 || k == 0 || n == 0)
        return;

    // Pack B^T once (pure data movement, so exact); amortized over
    // the m output rows. The buffer comes from the thread-local
    // Workspace — per-agent updates run whole gemmNT calls inside
    // pool workers concurrently, and the slot's capacity persists at
    // its high-water mark so warm calls never touch the allocator.
    std::vector<Real> &packed =
        base::Workspace::threadLocal().scratch(base::wsGemmNTPack,
                                               k * n);
    for (std::size_t j = 0; j < n; ++j) {
        const Real *brow = b.row(j);
        for (std::size_t kk = 0; kk < k; ++kk)
            packed[kk * n + j] = brow[kk];
    }
    const Real *bt = packed.data();

    const kernels::KernelTable &kt = kernels::active();
    base::ThreadPool &pool = base::ThreadPool::global();
    if (!useParallel(pool, m, k, n)) {
        gemmNTRows(kt, a, bt, c, 0, m);
        return;
    }
    pool.parallelFor(0, m, blockM,
                     [&](std::size_t i0, std::size_t i1) {
                         gemmNTRows(kt, a, bt, c, i0, i1);
                     });
}

} // namespace marlin::numeric
