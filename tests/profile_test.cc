/**
 * @file
 * Tests for the profiling substrate: phase timers, breakdown math,
 * and the stats registry.
 */

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "marlin/profile/report.hh"
#include "marlin/profile/stats.hh"

namespace marlin::profile
{
namespace
{

TEST(PhaseTimer, AccumulatesAndCounts)
{
    PhaseTimer t;
    t.add(Phase::Sampling, 1'000'000);  // 1 ms
    t.add(Phase::Sampling, 2'000'000);
    t.add(Phase::TargetQ, 500'000);
    EXPECT_NEAR(t.seconds(Phase::Sampling), 0.003, 1e-9);
    EXPECT_EQ(t.count(Phase::Sampling), 2u);
    EXPECT_NEAR(t.totalSeconds(), 0.0035, 1e-9);
}

TEST(PhaseTimer, UpdateAllTrainersAggregates)
{
    PhaseTimer t;
    t.add(Phase::Sampling, 1'000'000);
    t.add(Phase::TargetQ, 2'000'000);
    t.add(Phase::QPLoss, 3'000'000);
    t.add(Phase::LayoutReorg, 4'000'000);
    t.add(Phase::ActionSelection, 100'000'000); // Not included.
    EXPECT_NEAR(t.updateAllTrainersSeconds(), 0.010, 1e-9);
}

TEST(PhaseTimer, MergeAndReset)
{
    PhaseTimer a, b;
    a.add(Phase::Sampling, 1000);
    b.add(Phase::Sampling, 2000);
    b.add(Phase::EnvStep, 500);
    a.merge(b);
    EXPECT_NEAR(a.seconds(Phase::Sampling), 3e-6, 1e-12);
    EXPECT_EQ(a.count(Phase::Sampling), 2u);
    a.reset();
    EXPECT_EQ(a.totalSeconds(), 0.0);
}

TEST(ScopedPhase, MeasuresEnclosedScope)
{
    PhaseTimer t;
    {
        ScopedPhase sp(t, Phase::EnvStep);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_GE(t.seconds(Phase::EnvStep), 0.0015);
    EXPECT_EQ(t.count(Phase::EnvStep), 1u);
}

TEST(Report, TopLevelPercentagesSumTo100)
{
    PhaseTimer t;
    t.add(Phase::ActionSelection, 20'000'000);
    t.add(Phase::Sampling, 50'000'000);
    t.add(Phase::TargetQ, 10'000'000);
    t.add(Phase::QPLoss, 10'000'000);
    t.add(Phase::EnvStep, 10'000'000);
    auto b = topLevelBreakdown(t);
    EXPECT_NEAR(b.actionSelectionPct + b.updateAllTrainersPct +
                    b.otherPct,
                100.0, 1e-6);
    EXPECT_NEAR(b.actionSelectionPct, 20.0, 1e-6);
    EXPECT_NEAR(b.updateAllTrainersPct, 70.0, 1e-6);
}

TEST(Report, UpdateBreakdownPercentages)
{
    PhaseTimer t;
    t.add(Phase::Sampling, 60'000'000);
    t.add(Phase::TargetQ, 30'000'000);
    t.add(Phase::QPLoss, 10'000'000);
    auto b = updateBreakdown(t);
    EXPECT_NEAR(b.samplingPct, 60.0, 1e-6);
    EXPECT_NEAR(b.targetQPct, 30.0, 1e-6);
    EXPECT_NEAR(b.qpLossPct, 10.0, 1e-6);
    EXPECT_NEAR(b.layoutReorgPct, 0.0, 1e-6);
}

TEST(Report, EmptyTimerYieldsZeros)
{
    PhaseTimer t;
    auto top = topLevelBreakdown(t);
    EXPECT_EQ(top.totalSeconds, 0.0);
    EXPECT_EQ(top.actionSelectionPct, 0.0);
    auto up = updateBreakdown(t);
    EXPECT_EQ(up.samplingPct, 0.0);
}

TEST(Report, FormattersProduceOutput)
{
    PhaseTimer t;
    t.add(Phase::Sampling, 1'000'000);
    EXPECT_NE(formatTopLevel(topLevelBreakdown(t)).find("total"),
              std::string::npos);
    EXPECT_NE(formatUpdate(updateBreakdown(t)).find("sampling"),
              std::string::npos);
    EXPECT_NE(formatPhaseTable(t).find("mini_batch_sampling"),
              std::string::npos);
}

TEST(Distribution, Moments)
{
    Distribution d;
    EXPECT_EQ(d.mean(), 0.0);
    for (double v : {1.0, 2.0, 3.0, 4.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_NEAR(d.mean(), 2.5, 1e-12);
    EXPECT_EQ(d.min(), 1.0);
    EXPECT_EQ(d.max(), 4.0);
    EXPECT_NEAR(d.variance(), 5.0 / 3.0, 1e-9);
}

TEST(Distribution, SingleSampleHasZeroVariance)
{
    Distribution d;
    d.sample(7.0);
    EXPECT_EQ(d.variance(), 0.0);
    EXPECT_EQ(d.min(), 7.0);
    EXPECT_EQ(d.max(), 7.0);
}

TEST(StatsRegistry, CountersAndDists)
{
    StatsRegistry reg;
    reg.inc("updates");
    reg.inc("updates", 4);
    EXPECT_EQ(reg.counter("updates"), 5u);
    EXPECT_EQ(reg.counter("missing"), 0u);
    reg.sample("reward", 1.0);
    reg.sample("reward", 3.0);
    EXPECT_NEAR(reg.dist("reward").mean(), 2.0, 1e-12);
    EXPECT_EQ(reg.dist("missing").count(), 0u);
    EXPECT_EQ(reg.counterNames().size(), 1u);
    EXPECT_EQ(reg.distNames().size(), 1u);
    EXPECT_NE(reg.dump().find("updates"), std::string::npos);
    reg.reset();
    EXPECT_EQ(reg.counter("updates"), 0u);
}

TEST(Phase, NamesAreDistinct)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i < numPhases; ++i)
        names.insert(phaseName(static_cast<Phase>(i)));
    EXPECT_EQ(names.size(), numPhases);
}

} // namespace
} // namespace marlin::profile
