/**
 * @file
 * Rank-based prioritized replay (Schaul et al., 2015, Section 3.3):
 * P(i) proportional to 1/rank(i) under a TD-error ordering. Less
 * sensitive to outlier TD magnitudes than the proportional variant;
 * included as the second standard PER flavour so the prioritization
 * comparisons in the paper can be reproduced against both.
 */

#ifndef MARLIN_REPLAY_RANK_SAMPLER_HH
#define MARLIN_REPLAY_RANK_SAMPLER_HH

#include <vector>

#include "marlin/replay/prioritized_sampler.hh"

namespace marlin::replay
{

/**
 * Rank-based PER. Priorities are kept in a lazily re-sorted array;
 * sampling draws from precomputed rank segments (equal-probability
 * strata over the 1/rank distribution), which is the structure the
 * original paper recommends.
 */
class RankBasedSampler : public Sampler
{
  public:
    explicit RankBasedSampler(PerConfig config);

    std::string name() const override { return "per_rank"; }

    void planInto(BufferIndex buffer_size, std::size_t batch,
                  Rng &rng, IndexPlan &out) override;

    void onAdd(BufferIndex idx) override;

    void updatePriorities(const std::vector<BufferIndex> &priority_ids,
                          const std::vector<Real> &td_errors) override;

    void saveState(std::ostream &os) const override;
    void loadState(std::istream &is) override;

    const PerConfig &config() const { return _config; }
    Real currentBeta() const { return beta; }

    /** Re-sorts happen every this many plans (default 16). */
    void setResortInterval(std::uint64_t interval);

  private:
    PerConfig _config;
    Real beta;
    std::vector<Real> tdError;       ///< |TD| per slot.
    std::vector<BufferIndex> order;  ///< Slots sorted by |TD| desc.
    bool dirty = true;
    std::uint64_t plansSinceSort = 0;
    std::uint64_t resortInterval = 16;
    BufferIndex known = 0; ///< Slots that have ever been written.
    Real maxTd = Real(1);  ///< Running max |TD| for fresh inserts.
    std::vector<double> cumulative; ///< Cached 1/rank^alpha prefix.
    std::vector<double> rawWeights; ///< Per-plan scratch.

    void resort();
};

} // namespace marlin::replay

#endif // MARLIN_REPLAY_RANK_SAMPLER_HH
