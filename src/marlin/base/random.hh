/**
 * @file
 * Deterministic, seedable random number generation.
 *
 * MARLin uses xoshiro256** seeded through SplitMix64 rather than
 * std::mt19937 so that results are bit-reproducible across standard
 * library implementations and fast enough for per-sample use inside
 * the replay samplers (the paper's hot path draws 1024 indices per
 * agent per update).
 */

#ifndef MARLIN_BASE_RANDOM_HH
#define MARLIN_BASE_RANDOM_HH

#include <cstdint>
#include <vector>

#include "marlin/base/types.hh"

namespace marlin
{

/** SplitMix64 — used to expand a single seed into xoshiro state. */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    /** Next 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state;
};

/**
 * Complete serializable Rng state: the four xoshiro words plus the
 * Box-Muller spare cache. Restoring this mid-run continues the
 * stream bit-identically — including the parity of gaussian()
 * draws — which full-state checkpointing depends on.
 */
struct RngState
{
    std::uint64_t s[4] = {0, 0, 0, 0};
    bool haveSpare = false;
    double spare = 0.0;
};

/**
 * xoshiro256** PRNG with convenience distributions.
 *
 * All distribution helpers are deterministic functions of the stream,
 * so a fixed seed yields a bit-identical training run.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL);

    /** Re-seed in place. */
    void seed(std::uint64_t seed);

    /** Raw 64-bit draw. */
    std::uint64_t next();

    // UniformRandomBitGenerator interface (usable with std::shuffle).
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }
    result_type operator()() { return next(); }

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform float in [0, 1). */
    float uniformf();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0. */
    std::uint64_t randint(std::uint64_t n);

    /** Standard normal via Box-Muller (cached spare). */
    double gaussian();

    /** Normal with mean @p mu and std @p sigma. */
    double gaussian(double mu, double sigma);

    /**
     * Sample @p count indices uniformly from [0, n) with replacement.
     * This mirrors the mini-batch index draw of the baseline MARL
     * sampling phase (random.sample over the buffer in the paper's
     * Algorithm 1 pseudo-code; reference implementations sample with
     * replacement).
     */
    std::vector<BufferIndex> sampleIndices(BufferIndex n,
                                           std::size_t count);

    /**
     * sampleIndices into caller-owned storage (capacity-retaining).
     * Draw order and count are identical to sampleIndices, so the
     * two produce the same stream state and the same indices.
     */
    void sampleIndicesInto(BufferIndex n, std::size_t count,
                           std::vector<BufferIndex> &out);

    /**
     * Sample @p count distinct indices from [0, n) without
     * replacement (partial Fisher-Yates over a temporary).
     * @pre count <= n.
     */
    std::vector<BufferIndex> sampleIndicesDistinct(BufferIndex n,
                                                   std::size_t count);

    /** Snapshot the full generator state for checkpointing. */
    RngState state() const;

    /** Restore a snapshot taken by state(). */
    void setState(const RngState &state);

  private:
    std::uint64_t s[4];
    bool have_spare = false;
    double spare = 0.0;
};

} // namespace marlin

#endif // MARLIN_BASE_RANDOM_HH
