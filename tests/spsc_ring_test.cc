/**
 * @file
 * Unit tests for the lock-free SPSC primitives underneath the async
 * actor-learner runtime: index arithmetic across the power-of-two
 * wrap boundary, full/empty behaviour under a real two-thread
 * producer/consumer, the transition ring's sequence-gap accounting
 * on producer overrun, and FIFO drain-order determinism.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "marlin/base/spsc_ring.hh"
#include "marlin/base/worker_thread.hh"
#include "marlin/replay/transition_ring.hh"

namespace marlin
{
namespace
{

TEST(SpscRing, CeilPow2)
{
    EXPECT_EQ(base::ceilPow2(0), 2u);
    EXPECT_EQ(base::ceilPow2(1), 2u);
    EXPECT_EQ(base::ceilPow2(2), 2u);
    EXPECT_EQ(base::ceilPow2(3), 4u);
    EXPECT_EQ(base::ceilPow2(4), 4u);
    EXPECT_EQ(base::ceilPow2(5), 8u);
    EXPECT_EQ(base::ceilPow2(1000), 1024u);
    EXPECT_EQ(base::ceilPow2(1024), 1024u);
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo)
{
    base::SpscRing<int> ring(5);
    EXPECT_EQ(ring.capacity(), 8u);
    base::SpscRing<int> tiny(0);
    EXPECT_EQ(tiny.capacity(), 2u);
}

TEST(SpscRing, RejectsPushWhenFullAndPopWhenEmpty)
{
    base::SpscRing<int> ring(4);
    int out = -1;
    EXPECT_FALSE(ring.tryPop(out));
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(ring.tryPush(i));
    EXPECT_FALSE(ring.tryPush(99)) << "5th push into cap-4 ring";
    EXPECT_EQ(ring.size(), 4u);
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(ring.tryPop(out));
        EXPECT_EQ(out, i);
    }
    EXPECT_FALSE(ring.tryPop(out));
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, SurvivesManyWrapsAroundThePow2Boundary)
{
    // Push/pop far more values than the capacity so the monotonic
    // 64-bit positions lap the slot array many times; FIFO order and
    // values must hold across every wrap.
    base::SpscRing<std::uint32_t> ring(8);
    std::uint32_t next_in = 0;
    std::uint32_t next_out = 0;
    // Keep the ring partially full so wraps happen mid-occupancy.
    for (int round = 0; round < 1000; ++round) {
        for (int i = 0; i < 5; ++i)
            ASSERT_TRUE(ring.tryPush(next_in++));
        std::uint32_t v = 0;
        for (int i = 0; i < 5; ++i) {
            ASSERT_TRUE(ring.tryPop(v));
            ASSERT_EQ(v, next_out++);
        }
    }
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(next_out, 5000u);
}

TEST(SpscRing, BatchPushPopRespectCapacityAndOrder)
{
    base::SpscRing<int> ring(8);
    std::vector<int> src(12);
    for (int i = 0; i < 12; ++i)
        src[static_cast<std::size_t>(i)] = i;
    // Only capacity() values fit; the rest are refused, not lost
    // silently — the return value says how many were taken.
    EXPECT_EQ(ring.pushBatch(src.data(), src.size()), 8u);
    std::vector<int> dst(12, -1);
    EXPECT_EQ(ring.popBatch(dst.data(), dst.size()), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(dst[static_cast<std::size_t>(i)], i);
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, TwoThreadStressPreservesEveryValueInOrder)
{
    // A real producer thread races a real consumer through a small
    // ring so both the full path (producer spins) and the empty path
    // (consumer spins) are exercised constantly. Every value must
    // arrive exactly once, in order.
    constexpr std::uint32_t kCount = 200000;
    base::SpscRing<std::uint32_t> ring(16);
    std::atomic<bool> failed{false};

    std::thread producer([&] {
        for (std::uint32_t v = 0; v < kCount; ++v) {
            while (!ring.tryPush(v))
                std::this_thread::yield();
        }
    });
    std::uint32_t expected = 0;
    while (expected < kCount) {
        std::uint32_t v = 0;
        if (!ring.tryPop(v)) {
            std::this_thread::yield();
            continue;
        }
        if (v != expected) {
            failed.store(true);
            break;
        }
        ++expected;
    }
    producer.join();
    EXPECT_FALSE(failed.load());
    EXPECT_EQ(expected, kCount);
    EXPECT_TRUE(ring.empty());
}

TEST(WorkerThread, RunsTheTaskAndJoinIsIdempotent)
{
    std::atomic<int> ran{0};
    {
        base::WorkerThread w("marlin-test",
                             [&] { ran.fetch_add(1); });
        w.join();
        w.join(); // second join must be a no-op
    }             // destructor join on a joined thread: also a no-op
    EXPECT_EQ(ran.load(), 1);
}

TEST(WorkerThread, TrampolineCapturesEscapedExceptions)
{
    base::WorkerThread w("marlin-crash", [] {
        throw std::runtime_error("injected boom");
    });
    w.join();
    EXPECT_TRUE(w.finished());
    EXPECT_TRUE(w.failed());
    EXPECT_EQ(w.errorMessage(), "injected boom");

    base::WorkerThread clean("marlin-clean", [] {});
    clean.join();
    EXPECT_TRUE(clean.finished());
    EXPECT_FALSE(clean.failed());
}

TEST(WorkerThread, TrampolineCapturesNonStdThrows)
{
    base::WorkerThread w("marlin-odd", [] { throw 42; });
    w.join();
    EXPECT_TRUE(w.failed());
    EXPECT_EQ(w.errorMessage(), "<unknown exception>");
}

TEST(WorkerThread, HeartbeatDistinguishesProgressFromSilence)
{
    base::Heartbeat hb;
    EXPECT_EQ(hb.lastBeatNs(), 0u) << "0 means never beaten";
    hb.beat();
    const std::uint64_t first = hb.lastBeatNs();
    EXPECT_GT(first, 0u);
    // A beating worker keeps nsSinceBeat small; silence grows it.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_GE(hb.nsSinceBeat(), 1000000u);
    hb.beat();
    EXPECT_GE(hb.lastBeatNs(), first) << "stamps are monotonic";
    EXPECT_LT(hb.nsSinceBeat(), 1000000000u);
}

TEST(WorkerThread, HeartbeatOutlivesTheThreadThatStampsIt)
{
    // The supervisor reads the final stamp of a dead thread; the
    // Heartbeat is owned by the watcher, not the worker.
    base::Heartbeat hb;
    {
        base::WorkerThread w("marlin-beat", [&hb] {
            hb.beat();
            throw std::runtime_error("died after beating");
        });
        w.join();
        EXPECT_TRUE(w.failed());
    }
    EXPECT_GT(hb.lastBeatNs(), 0u);
}

replay::JointTransitionLayout
tinyLayout()
{
    std::vector<replay::TransitionShape> shapes;
    shapes.push_back({2, 3}); // obsDim 2, actDim 3
    shapes.push_back({4, 3});
    return replay::JointTransitionLayout::fromShapes(shapes);
}

TEST(TransitionRing, LayoutOffsetsAreSequentialAndStrideMatches)
{
    const auto layout = tinyLayout();
    ASSERT_EQ(layout.agents.size(), 2u);
    const auto &a0 = layout.agents[0];
    EXPECT_EQ(a0.obs, 0u);
    EXPECT_EQ(a0.act, 2u);
    EXPECT_EQ(a0.reward, 5u);
    EXPECT_EQ(a0.nextObs, 6u);
    EXPECT_EQ(a0.done, 8u);
    const auto &a1 = layout.agents[1];
    EXPECT_EQ(a1.obs, 9u);
    // stride == sum of per-agent flat sizes.
    EXPECT_EQ(layout.stride, (2 * 2 + 3 + 2) + (2 * 4 + 3 + 2));
}

TEST(TransitionRing, PackDrainRoundTripsThroughReplay)
{
    const auto layout = tinyLayout();
    std::vector<std::vector<Real>> obs = {{1, 2}, {3, 4, 5, 6}};
    std::vector<std::vector<Real>> act = {{7, 8, 9}, {10, 11, 12}};
    std::vector<Real> rew = {13, 14};
    std::vector<std::vector<Real>> nxt = {{15, 16}, {17, 18, 19, 20}};
    std::vector<bool> done = {false, true};

    std::vector<Real> rec(layout.stride, Real(-1));
    replay::packRecord(rec.data(), layout, obs, act, rew, nxt, done);

    replay::MultiAgentBuffer buffers({{2, 3}, {4, 3}}, 16);
    replay::drainRecordInto(buffers, layout, rec.data());
    ASSERT_EQ(buffers.size(), 1u);

    const auto &b0 = buffers.agent(0);
    EXPECT_EQ(b0.obsRow(0)[0], Real(1));
    EXPECT_EQ(b0.obsRow(0)[1], Real(2));
    EXPECT_EQ(b0.actRow(0)[2], Real(9));
    EXPECT_EQ(b0.rewardAt(0), Real(13));
    EXPECT_EQ(b0.nextObsRow(0)[1], Real(16));
    EXPECT_EQ(b0.doneAt(0), Real(0));
    const auto &b1 = buffers.agent(1);
    EXPECT_EQ(b1.obsRow(0)[3], Real(6));
    EXPECT_EQ(b1.rewardAt(0), Real(14));
    EXPECT_EQ(b1.doneAt(0), Real(1));
}

TEST(TransitionRing, DrainOrderIsFifoDeterministic)
{
    // One producer, one consumer, no drops: records come out exactly
    // in push order with contiguous sequence numbers and zero gaps —
    // the property the 1-actor async configuration leans on.
    replay::TransitionRing ring(4, 64);
    for (std::uint64_t s = 0; s < 40; ++s) {
        Real *rec = ring.tryBeginPush(s);
        ASSERT_NE(rec, nullptr);
        rec[0] = static_cast<Real>(s);
        ring.commitPush();
        if (s % 8 == 7)
            ring.publish();
    }
    ring.publish();
    for (std::uint64_t s = 0; s < 40; ++s) {
        std::uint64_t seq = 0;
        const Real *rec = ring.front(&seq);
        ASSERT_NE(rec, nullptr);
        EXPECT_EQ(seq, s);
        EXPECT_EQ(rec[0], static_cast<Real>(s));
        ring.pop();
    }
    EXPECT_EQ(ring.front(), nullptr);
    EXPECT_EQ(ring.pushedCount(), 40u);
    EXPECT_EQ(ring.poppedCount(), 40u);
    EXPECT_EQ(ring.droppedCount(), 0u);
    EXPECT_EQ(ring.seqGapCount(), 0u);
}

TEST(TransitionRing, OverrunDropsAreCountedAsSequenceGaps)
{
    // Fill a capacity-4 ring, then overrun it: the drops must be
    // counted on the producer side AND observed as sequence gaps by
    // the consumer once the producer resumes after space frees up.
    replay::TransitionRing ring(2, 4);
    ASSERT_EQ(ring.capacity(), 4u);
    std::uint64_t seq = 0;
    auto push = [&](bool expect_ok) {
        Real *rec = ring.tryBeginPush(seq);
        if (rec != nullptr) {
            rec[0] = static_cast<Real>(seq);
            ring.commitPush();
        }
        EXPECT_EQ(rec != nullptr, expect_ok) << "seq " << seq;
        ++seq; // dropped or not, the sequence number is consumed
    };
    for (int i = 0; i < 4; ++i)
        push(true);
    ring.publish();
    push(false); // seq 4 dropped
    push(false); // seq 5 dropped
    EXPECT_EQ(ring.droppedCount(), 2u);

    // Drain two, freeing space; the next pushes land again.
    for (int i = 0; i < 2; ++i) {
        ASSERT_NE(ring.front(), nullptr);
        ring.pop();
    }
    push(true); // seq 6
    push(true); // seq 7
    ring.publish();

    // Drain the rest; crossing from seq 3 to seq 6 reveals the gap.
    std::vector<std::uint64_t> seen;
    std::uint64_t s = 0;
    while (ring.front(&s) != nullptr) {
        seen.push_back(s);
        ring.pop();
    }
    EXPECT_EQ(seen, (std::vector<std::uint64_t>{2, 3, 6, 7}));
    EXPECT_EQ(ring.seqGapCount(), 2u) << "seqs 4 and 5 went missing";
    EXPECT_EQ(ring.pushedCount() + ring.droppedCount(), seq);
}

TEST(TransitionRing, CapacityTwoRingKeepsExactAccounting)
{
    // The smallest legal ring (capacity hint 0 rounds up to 2):
    // full/empty transitions every push/pop pair, and overrun
    // accounting must stay exact at this degenerate size.
    replay::TransitionRing ring(2, 0);
    ASSERT_EQ(ring.capacity(), 2u);
    std::uint64_t seq = 0;
    std::uint64_t generated = 0;
    for (int round = 0; round < 100; ++round) {
        // Push until full, then one overrun.
        while (true) {
            Real *rec = ring.tryBeginPush(seq);
            ++seq;
            ++generated;
            if (rec == nullptr)
                break;
            rec[0] = static_cast<Real>(seq - 1);
            ring.commitPush();
        }
        ring.publish();
        // Drain everything.
        std::uint64_t s = 0;
        while (ring.front(&s) != nullptr) {
            EXPECT_LT(s, seq);
            ring.pop();
        }
    }
    EXPECT_EQ(ring.pushedCount() + ring.droppedCount(), generated);
    EXPECT_EQ(ring.poppedCount(), ring.pushedCount());
    EXPECT_LE(ring.seqGapCount(), ring.droppedCount());
    EXPECT_EQ(ring.depth(), 0u);
}

TEST(TransitionRing, SuccessorFlushesADeadProducersStagedRecords)
{
    // Satellite drill: the producer dies mid-batched-publish — some
    // records committed but never published, one claimed but never
    // committed. After joining the dead thread (the happens-before
    // edge), the supervisor publishes on its behalf and a successor
    // producer continues with the next sequence number; only the
    // uncommitted claim's seq may go missing, and the gap accounting
    // must say exactly that.
    replay::TransitionRing ring(2, 8);
    base::WorkerThread producer("marlin-dying", [&ring] {
        for (std::uint64_t s = 0; s < 3; ++s) {
            Real *rec = ring.tryBeginPush(s);
            ASSERT_NE(rec, nullptr);
            rec[0] = static_cast<Real>(s);
            rec[1] = Real(7);
            ring.commitPush();
        }
        // Claim seq 3 but die before commitPush: the slot must be
        // overwritten by the successor, not leak to the consumer.
        Real *rec = ring.tryBeginPush(3);
        ASSERT_NE(rec, nullptr);
        rec[0] = Real(-999);
        throw std::runtime_error("power cut mid-batch");
    });
    producer.join();
    ASSERT_TRUE(producer.failed());

    // Nothing is visible before the supervisor's flush.
    EXPECT_EQ(ring.front(), nullptr);
    ring.publish();

    // Successor takes over where the dead producer stopped. Seq 3
    // was consumed by the uncommitted claim, so it resumes at 4.
    for (std::uint64_t s = 4; s < 6; ++s) {
        Real *rec = ring.tryBeginPush(s);
        ASSERT_NE(rec, nullptr);
        rec[0] = static_cast<Real>(s);
        rec[1] = Real(7);
        ring.commitPush();
    }
    ring.publish();

    std::vector<std::uint64_t> seen;
    std::uint64_t s = 0;
    while (ring.front(&s) != nullptr) {
        seen.push_back(s);
        ring.pop();
    }
    EXPECT_EQ(seen, (std::vector<std::uint64_t>{0, 1, 2, 4, 5}));
    EXPECT_EQ(ring.seqGapCount(), 1u) << "only the uncommitted seq 3";
    EXPECT_EQ(ring.pushedCount(), 5u);
    EXPECT_EQ(ring.poppedCount(), 5u);
}

TEST(TransitionRing, TwoThreadDrainAccountsEveryRecord)
{
    // Producer thread generating records full tilt against a slow
    // consumer: whatever happens, pushed + dropped == generated and
    // the consumer pops exactly the pushed ones.
    constexpr std::uint64_t kGenerate = 50000;
    replay::TransitionRing ring(2, 32);
    std::atomic<bool> producer_done{false};
    base::WorkerThread producer("marlin-prod", [&] {
        for (std::uint64_t s = 0; s < kGenerate; ++s) {
            Real *rec = ring.tryBeginPush(s);
            if (rec != nullptr) {
                rec[0] = static_cast<Real>(s);
                rec[1] = Real(0);
                ring.commitPush();
            }
            if (s % 8 == 7)
                ring.publish();
        }
        ring.publish();
        producer_done.store(true, std::memory_order_release);
    });

    std::uint64_t popped = 0;
    std::uint64_t last_seq = 0;
    bool have_last = false;
    while (true) {
        // Same protocol as the learner: read the retirement flag
        // BEFORE probing the ring, so "done + empty" proves the
        // final publish has been observed.
        const bool finished =
            producer_done.load(std::memory_order_acquire);
        std::uint64_t s = 0;
        const Real *rec = ring.front(&s);
        if (rec == nullptr) {
            if (finished)
                break;
            std::this_thread::yield();
            continue;
        }
        if (have_last)
            EXPECT_GT(s, last_seq) << "sequence must be increasing";
        last_seq = s;
        have_last = true;
        ++popped;
        ring.pop();
    }
    producer.join();
    EXPECT_EQ(ring.pushedCount() + ring.droppedCount(), kGenerate);
    EXPECT_EQ(popped, ring.pushedCount());
    EXPECT_EQ(ring.poppedCount(), popped);
    // Consumer-observed gaps cannot exceed the producer's drops.
    EXPECT_LE(ring.seqGapCount(), ring.droppedCount());
}

} // namespace
} // namespace marlin
