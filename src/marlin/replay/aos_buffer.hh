/**
 * @file
 * Array-of-structures replay layout: every transition is one
 * contiguous record (obs | act | reward | nextObs | done) inside a
 * single per-agent array. Kept as the ablation counterpart to the
 * SoA ReplayBuffer (DESIGN.md decision 1): AoS makes one row gather
 * a single seek, SoA makes it three shorter seeks but keeps each
 * field array dense for columnar passes.
 */

#ifndef MARLIN_REPLAY_AOS_BUFFER_HH
#define MARLIN_REPLAY_AOS_BUFFER_HH

#include <vector>

#include "marlin/replay/gather.hh"
#include "marlin/replay/replay_buffer.hh"

namespace marlin::replay
{

/** AoS ring buffer of one agent's transitions. */
class AosReplayBuffer
{
  public:
    AosReplayBuffer(TransitionShape shape, BufferIndex capacity);

    const TransitionShape &shape() const { return _shape; }
    BufferIndex capacity() const { return _capacity; }
    BufferIndex size() const { return _size; }
    std::size_t recordSize() const { return stride; }

    /** Append one transition, evicting the oldest when full. */
    void add(const Real *obs, const Real *action, Real reward,
             const Real *next_obs, bool done);

    /** Record start pointer for slot @p idx. */
    const Real *
    record(BufferIndex idx) const
    {
        return data.data() + idx * stride;
    }

    /** View into record fields at slot @p idx. @pre idx < size. */
    TransitionView view(BufferIndex idx) const;

    /** Gather an index plan into a dense batch. */
    void gather(const IndexPlan &plan, AgentBatch &out,
                AccessTrace *trace = nullptr) const;

    std::size_t storageBytes() const { return data.size() * sizeof(Real); }

  private:
    TransitionShape _shape;
    BufferIndex _capacity;
    BufferIndex _size = 0;
    BufferIndex pos = 0;
    std::size_t stride;
    std::vector<Real> data;
};

} // namespace marlin::replay

#endif // MARLIN_REPLAY_AOS_BUFFER_HH
