/**
 * @file
 * Fault-tolerance tests of the supervised async runtime: chaos
 * schedules (actor kills, stalls, corrupt transitions, learner
 * kills, snapshot delays) against the Supervisor's restart/degrade/
 * halt policies, NaN quarantine at the drain funnel, the async
 * checkpoint/resume path, and the FaultInjector chaos API itself.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "marlin/marlin.hh"

namespace marlin
{
namespace
{

namespace fs = std::filesystem;

constexpr std::size_t kAgents = 3;

struct TempDir
{
    fs::path path;

    explicit TempDir(const char *tag)
        : path(fs::temp_directory_path() /
               (std::string("marlin_sup_") + tag))
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
};

std::vector<std::size_t>
agentDims()
{
    auto environment = env::makeCooperativeNavigationEnv(kAgents, 1);
    std::vector<std::size_t> dims;
    for (std::size_t i = 0; i < environment->numAgents(); ++i)
        dims.push_back(environment->obsDim(i));
    return dims;
}

core::TrainConfig
chaosTestConfig()
{
    core::TrainConfig c;
    c.batchSize = 32;
    c.bufferCapacity = 4096;
    c.warmupTransitions = 64;
    c.updateEvery = 25;
    c.hiddenDims = {16, 16};
    c.seed = 29;
    return c;
}

std::unique_ptr<core::CtdeTrainerBase>
makeMaddpg(const core::TrainConfig &config)
{
    auto environment = env::makeCooperativeNavigationEnv(kAgents, 1);
    return std::make_unique<core::MaddpgTrainer>(
        agentDims(), environment->actionDim(), config,
        [] { return std::make_unique<replay::UniformSampler>(); });
}

/** One supervised async run under @p injector's schedule. */
async::AsyncTrainResult
runChaos(std::size_t episodes, async::AsyncConfig acfg,
         base::FaultInjector *injector,
         core::CtdeTrainerBase *trainer = nullptr)
{
    const core::TrainConfig config = chaosTestConfig();
    std::unique_ptr<core::CtdeTrainerBase> owned;
    if (trainer == nullptr)
    {
        owned = makeMaddpg(config);
        trainer = owned.get();
    }
    async::AsyncTrainLoop loop(
        *trainer,
        [](std::uint64_t seed) {
            return env::makeCooperativeNavigationEnv(kAgents, seed);
        },
        [&config](std::uint64_t seed) {
            core::TrainConfig actor_config = config;
            actor_config.seed = seed;
            return makeMaddpg(actor_config);
        },
        config, acfg);
    if (injector != nullptr)
        loop.setFaultInjector(injector);
    return loop.run(episodes);
}

/** pushed == drained + quarantined + residual: nothing vanishes. */
void
expectConservation(const async::AsyncTrainResult &r)
{
    EXPECT_EQ(r.envSteps, r.ringPushed + r.ringDropped);
    EXPECT_EQ(r.ringPushed,
              r.drainedSteps + r.quarantined + r.ringResidual);
    EXPECT_LE(r.ringSeqGaps, r.ringDropped);
}

// --- FaultInjector chaos API ------------------------------------

TEST(FaultInjectorChaos, ParseChaosSpecAcceptsTheFullGrammar)
{
    base::FaultInjector injector;
    std::string error;
    ASSERT_TRUE(injector.parseChaosSpec(
        "kill:1@120, stall:2@200:50, corrupt:0@300, "
        "kill-learner@400, delay-snap@3:20",
        &error))
        << error;
    const auto faults = injector.scheduledFaults();
    ASSERT_EQ(faults.size(), 5u);
    EXPECT_EQ(faults[0].kind, base::FaultKind::KillActor);
    EXPECT_EQ(faults[0].actorId, 1u);
    EXPECT_EQ(faults[0].atStep, 120u);
    EXPECT_EQ(faults[1].kind, base::FaultKind::StallActor);
    EXPECT_EQ(faults[1].millis, 50u);
    EXPECT_EQ(faults[2].kind, base::FaultKind::CorruptTransition);
    EXPECT_EQ(faults[2].actorId, 0u);
    EXPECT_EQ(faults[3].kind, base::FaultKind::KillLearner);
    EXPECT_EQ(faults[3].atStep, 400u);
    EXPECT_EQ(faults[4].kind, base::FaultKind::DelaySnapshot);
    EXPECT_EQ(faults[4].atStep, 3u);
    EXPECT_EQ(faults[4].millis, 20u);
}

TEST(FaultInjectorChaos, ParseChaosSpecRejectsMalformedTokens)
{
    const char *bad[] = {
        "explode:1@5",       // unknown verb
        "kill:1",            // missing @step
        "kill:x@5",          // non-numeric actor
        "stall:1@5",         // missing :ms
        "kill-learner@",     // missing step
        "delay-snap@3",      // missing :ms
        "@5",                // missing verb
    };
    for (const char *spec : bad)
    {
        base::FaultInjector injector;
        std::string error;
        EXPECT_FALSE(injector.parseChaosSpec(spec, &error))
            << "accepted: " << spec;
        EXPECT_FALSE(error.empty()) << spec;
        EXPECT_TRUE(injector.scheduledFaults().empty())
            << "partial schedule from: " << spec;
    }
}

TEST(FaultInjectorChaos, EventsFireOnceAtTheScheduledStep)
{
    base::FaultInjector injector;
    injector.scheduleFault(
        {base::FaultKind::KillActor, /*actorId=*/0, /*atStep=*/5, 0});
    injector.scheduleFault({base::FaultKind::StallActor, 0, 3, 40});

    EXPECT_FALSE(injector.onActorStep(1, 100).kill)
        << "wrong actor must never fire";
    auto act = injector.onActorStep(0, 2);
    EXPECT_FALSE(act.kill);
    EXPECT_EQ(act.stallMs, 0u);
    // Step 4 is past the stall's step 3: due events fire on the
    // first hook call at-or-after their step.
    act = injector.onActorStep(0, 4);
    EXPECT_EQ(act.stallMs, 40u);
    EXPECT_FALSE(act.kill);
    act = injector.onActorStep(0, 7);
    EXPECT_TRUE(act.kill);
    EXPECT_EQ(act.stallMs, 0u) << "stall already fired";
    act = injector.onActorStep(0, 8);
    EXPECT_FALSE(act.kill) << "events are one-shot";

    EXPECT_EQ(injector.tripCount(base::FaultKind::KillActor), 1u);
    EXPECT_EQ(injector.tripCount(base::FaultKind::StallActor), 1u);
    EXPECT_EQ(injector.tripTotal(), 2u);
}

TEST(FaultInjectorChaos, LearnerAndSnapshotHooks)
{
    base::FaultInjector injector;
    injector.scheduleFault(
        {base::FaultKind::KillLearner, 0, /*atStep=*/100, 0});
    injector.scheduleFault(
        {base::FaultKind::DelaySnapshot, 0, /*atStep=*/2, 15});

    EXPECT_FALSE(injector.onLearnerDrain(99));
    EXPECT_TRUE(injector.onLearnerDrain(250));
    EXPECT_FALSE(injector.onLearnerDrain(300)) << "one-shot";
    EXPECT_EQ(injector.onSnapshotPublish(1), 0u);
    EXPECT_EQ(injector.onSnapshotPublish(2), 15u);
    EXPECT_EQ(injector.onSnapshotPublish(3), 0u) << "one-shot";
}

TEST(FaultInjectorChaos, HooksAreSafeFromConcurrentThreads)
{
    // Many threads hammer the hooks of a shared injector; every
    // event must fire exactly once in total (CAS on its own flag).
    constexpr std::size_t kEvents = 64;
    constexpr std::size_t kThreads = 4;
    base::FaultInjector injector;
    for (std::size_t e = 0; e < kEvents; ++e)
        injector.scheduleFault({base::FaultKind::CorruptTransition,
                                e % kThreads, e / kThreads + 1, 0});

    std::atomic<std::uint64_t> observed{0};
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t)
    {
        threads.emplace_back([&injector, &observed, t] {
            for (std::uint64_t step = 1; step <= kEvents; ++step)
            {
                // Every thread polls every actor id, so each event
                // is contended by all threads.
                for (std::size_t a = 0; a < kThreads; ++a)
                    if (injector.onActorStep(a, step).corrupt)
                        observed.fetch_add(
                            1, std::memory_order_relaxed);
            }
        });
    }
    for (auto &t : threads)
        t.join();
    // Merged actions can report several corrupt events as one
    // action, so count trips at the injector, not observations.
    EXPECT_EQ(injector.tripCount(base::FaultKind::CorruptTransition),
              kEvents);
    EXPECT_GE(observed.load(), 1u);
}

TEST(FaultInjectorChaos, RandomScheduleIsSeedDeterministic)
{
    base::FaultInjector a(42);
    base::FaultInjector b(42);
    const auto fa = a.scheduleRandomChaos(4, 200, 8);
    const auto fb = b.scheduleRandomChaos(4, 200, 8);
    ASSERT_EQ(fa.size(), 8u);
    ASSERT_EQ(fb.size(), 8u);
    for (std::size_t i = 0; i < fa.size(); ++i)
    {
        EXPECT_EQ(fa[i].kind, fb[i].kind);
        EXPECT_EQ(fa[i].actorId, fb[i].actorId);
        EXPECT_EQ(fa[i].atStep, fb[i].atStep);
        EXPECT_EQ(fa[i].millis, fb[i].millis);
    }
}

// --- Supervised runs under chaos --------------------------------

TEST(Supervisor, ChaosKillAndStallRunCompletesEveryEpisode)
{
    // The PR's acceptance drill: 4 actors, a seeded schedule kills
    // one and stalls another; training must complete the configured
    // run length and the supervisor must report exactly the
    // scheduled trips.
    //
    // Every fault fires at its target's FIRST step, and the actors
    // that are neither killed nor wedged get a short nap there too.
    // On a single-CPU box one actor can otherwise finish the whole
    // run inside its first scheduler timeslice before the targets
    // ever execute; gating each actor's step 1 with its own event
    // makes the drill scheduling-proof.
    const std::size_t episodes = 40;
    base::FaultInjector injector(7);
    std::string error;
    ASSERT_TRUE(injector.parseChaosSpec(
        "stall:0@1:30,kill:1@1,stall:2@1:120,stall:3@1:30,"
        "delay-snap@1:5",
        &error))
        << error;

    async::AsyncConfig acfg;
    acfg.actors = 4;
    acfg.watchdogDeadlineMs = 25;
    acfg.degradeAfterMs = 60000; // Trip-only: never degrade here.
    const auto result = runChaos(episodes, acfg, &injector);

    ASSERT_EQ(result.episodeRewards.size(), episodes);
    for (Real r : result.episodeRewards)
        EXPECT_TRUE(std::isfinite(r));
    EXPECT_FALSE(result.learnerFailed);
    EXPECT_EQ(result.restarts, 1u);
    EXPECT_EQ(result.degradations, 0u);
    EXPECT_GE(result.watchdogTrips, 1u) << "120ms stall vs 25ms "
                                           "deadline must trip";
    EXPECT_EQ(injector.tripCount(base::FaultKind::KillActor), 1u);
    EXPECT_EQ(injector.tripCount(base::FaultKind::StallActor), 3u);
    EXPECT_EQ(injector.tripCount(base::FaultKind::DelaySnapshot),
              1u);
    EXPECT_EQ(injector.tripCount(base::FaultKind::KillLearner), 0u);
    expectConservation(result);
    EXPECT_EQ(result.ringResidual, 0u)
        << "a surviving learner drains everything";
}

TEST(Supervisor, CorruptTransitionIsQuarantinedNotTrained)
{
    const std::size_t episodes = 10;
    base::FaultInjector injector;
    injector.scheduleFault(
        {base::FaultKind::CorruptTransition, 0, 2, 0});

    async::AsyncConfig acfg;
    acfg.actors = 2;
    const auto result = runChaos(episodes, acfg, &injector);

    ASSERT_EQ(result.episodeRewards.size(), episodes);
    EXPECT_EQ(injector.tripCount(base::FaultKind::CorruptTransition),
              1u);
    EXPECT_EQ(result.quarantined, 1u);
    EXPECT_FALSE(result.halted)
        << "the poisoned record must never reach an update";
    for (Real r : result.episodeRewards)
        EXPECT_TRUE(std::isfinite(r));
    expectConservation(result);
}

TEST(Supervisor, ExhaustedRestartBudgetDegradesTheActor)
{
    // maxRestarts=0: the first crash degrades deterministically and
    // the surviving fleet still completes every episode (the dead
    // actor's claims return to the reclaim pool). The healthy
    // actors nap at their first step so the doomed one is
    // guaranteed a slice before the pool drains (single-CPU boxes).
    const std::size_t episodes = 15;
    base::FaultInjector injector;
    injector.scheduleFault({base::FaultKind::StallActor, 0, 1, 30});
    injector.scheduleFault({base::FaultKind::StallActor, 1, 1, 30});
    injector.scheduleFault({base::FaultKind::KillActor, 2, 1, 0});

    async::AsyncConfig acfg;
    acfg.actors = 3;
    acfg.maxActorRestarts = 0;
    const auto result = runChaos(episodes, acfg, &injector);

    ASSERT_EQ(result.episodeRewards.size(), episodes);
    EXPECT_EQ(result.restarts, 0u);
    EXPECT_EQ(result.degradations, 1u);
    EXPECT_FALSE(result.learnerFailed);
    expectConservation(result);
}

TEST(Supervisor, KillLearnerHaltsTheFleetWithAccounting)
{
    const std::size_t episodes = 12;
    base::FaultInjector injector;
    injector.scheduleFault(
        {base::FaultKind::KillLearner, 0, /*drained=*/100, 0});

    async::AsyncConfig acfg;
    acfg.actors = 2;
    const auto result = runChaos(episodes, acfg, &injector);

    EXPECT_TRUE(result.learnerFailed);
    EXPECT_NE(result.learnerError.find("chaos"), std::string::npos)
        << result.learnerError;
    EXPECT_EQ(injector.tripCount(base::FaultKind::KillLearner), 1u);
    // Conservation still holds with a dead consumer: whatever the
    // actors pushed after the death stays in the rings, counted.
    expectConservation(result);
}

TEST(Supervisor, AsyncCheckpointWritesAndResumesAFinishedRun)
{
    TempDir dir("resume_done");
    const std::size_t episodes = 8;
    const core::TrainConfig config = chaosTestConfig();

    async::AsyncConfig acfg;
    acfg.actors = 2;
    acfg.checkpointDir = dir.path.string();
    acfg.checkpointEveryUpdates = 1;
    const auto first = runChaos(episodes, acfg, nullptr);
    ASSERT_EQ(first.episodeRewards.size(), episodes);
    EXPECT_GE(first.checkpointsSaved, 1u)
        << "clean exit must leave a final snapshot";

    // Resuming a finished run restores the full episode prefix and
    // completes immediately without re-running anything.
    auto trainer2 = makeMaddpg(config);
    async::AsyncConfig rcfg = acfg;
    rcfg.resume = true;
    const auto second =
        runChaos(episodes, rcfg, nullptr, trainer2.get());
    EXPECT_EQ(second.resumedFromEpisode, episodes);
    ASSERT_EQ(second.episodeRewards.size(), episodes);
    EXPECT_EQ(second.envSteps, 0u)
        << "nothing left to claim after a full-prefix resume";
}

TEST(Supervisor, KillLearnerThenResumeCompletesTheRun)
{
    // The crash drill: periodic learner-side snapshots, a scheduled
    // learner kill mid-run, then a second loop resumes from the last
    // snapshot and finishes the full run length.
    TempDir dir("resume_kill");
    const std::size_t episodes = 12;
    const core::TrainConfig config = chaosTestConfig();

    base::FaultInjector injector;
    injector.scheduleFault(
        {base::FaultKind::KillLearner, 0, /*drained=*/150, 0});

    async::AsyncConfig acfg;
    acfg.actors = 2;
    acfg.checkpointDir = dir.path.string();
    acfg.checkpointEveryUpdates = 1;
    const auto crashed = runChaos(episodes, acfg, &injector);
    EXPECT_TRUE(crashed.learnerFailed);
    // Structurally guaranteed: the kill fires at the end of the
    // drain cycle that crosses 150, after that cycle's update and
    // checkpoint — and 150 drained records are past warmup 64, so
    // either that cycle or an earlier one has checkpointed.
    ASSERT_GE(crashed.checkpointsSaved, 1u)
        << "warmup 64 + updateEvery 25 must checkpoint before "
           "the kill at drained >= 150";

    auto trainer2 = makeMaddpg(config);
    async::AsyncConfig rcfg = acfg;
    rcfg.resume = true;
    const auto resumed =
        runChaos(episodes, rcfg, nullptr, trainer2.get());
    EXPECT_FALSE(resumed.learnerFailed);
    ASSERT_EQ(resumed.episodeRewards.size(), episodes);
    for (Real r : resumed.episodeRewards)
        EXPECT_TRUE(std::isfinite(r));
    expectConservation(resumed);
}

TEST(Supervisor, SupervisionCountersSurfaceInObsRegistry)
{
    auto &registry = obs::Registry::instance();
    registry.resetAll();

    base::FaultInjector injector;
    injector.scheduleFault({base::FaultKind::StallActor, 0, 1, 30});
    injector.scheduleFault({base::FaultKind::KillActor, 1, 1, 0});
    async::AsyncConfig acfg;
    acfg.actors = 2;
    const auto result = runChaos(10, acfg, &injector);

    EXPECT_EQ(registry.counter("supervisor.restarts").value(),
              result.restarts);
    EXPECT_EQ(registry.counter("supervisor.degradations").value(),
              result.degradations);
    EXPECT_EQ(registry.counter("supervisor.quarantined").value(),
              result.quarantined);
    EXPECT_EQ(registry.counter("fault.kill-actor").value(), 1u);
}

// --- Watchdog stall policy --------------------------------------

TEST(Watchdog, StallPastDegradeDeadlineDegradesTheActor)
{
    // A 600ms wedge against a 50ms deadline and 150ms degrade
    // budget: the watchdog must trip, then degrade the actor; the
    // healthy peer absorbs its reclaimed episodes and the run still
    // completes in full. The healthy actor naps 30ms (under the
    // deadline, so no trip of its own) at step 1 to guarantee the
    // victim a slice before the pool drains on a single-CPU box.
    const std::size_t episodes = 20;
    base::FaultInjector injector;
    injector.scheduleFault({base::FaultKind::StallActor, 0, 1, 30});
    injector.scheduleFault({base::FaultKind::StallActor, 1, 1, 600});

    async::AsyncConfig acfg;
    acfg.actors = 2;
    acfg.watchdogDeadlineMs = 50;
    acfg.degradeAfterMs = 150;
    const auto result = runChaos(episodes, acfg, &injector);

    ASSERT_EQ(result.episodeRewards.size(), episodes);
    EXPECT_GE(result.watchdogTrips, 1u);
    EXPECT_EQ(result.degradations, 1u);
    EXPECT_EQ(result.restarts, 0u)
        << "a stalled thread cannot be restarted, only degraded";
    expectConservation(result);
}

TEST(Watchdog, ShortStallTripsWithoutDegrading)
{
    // A stall shorter than the degrade budget recovers: trip
    // latched and released, fleet intact.
    const std::size_t episodes = 10;
    base::FaultInjector injector;
    injector.scheduleFault({base::FaultKind::StallActor, 0, 5, 120});

    async::AsyncConfig acfg;
    acfg.actors = 2;
    acfg.watchdogDeadlineMs = 25;
    acfg.degradeAfterMs = 60000;
    const auto result = runChaos(episodes, acfg, &injector);

    ASSERT_EQ(result.episodeRewards.size(), episodes);
    EXPECT_GE(result.watchdogTrips, 1u);
    EXPECT_EQ(result.degradations, 0u);
    EXPECT_EQ(result.ringResidual, 0u);
    expectConservation(result);
}

} // namespace
} // namespace marlin
