/**
 * @file
 * Unit tests for marlin/numeric: Matrix, GEMM kernels, and ops.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "marlin/base/random.hh"
#include "marlin/numeric/gemm.hh"
#include "marlin/numeric/matrix.hh"
#include "marlin/numeric/ops.hh"

namespace marlin::numeric
{
namespace
{

Matrix
randomMatrix(std::size_t r, std::size_t c, Rng &rng)
{
    Matrix m(r, c);
    fillUniform(m, rng, -1, 1);
    return m;
}

/** Naive reference product. */
Matrix
refGemm(const Matrix &a, const Matrix &b)
{
    Matrix c(a.rows(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t k = 0; k < a.cols(); ++k)
            for (std::size_t j = 0; j < b.cols(); ++j)
                c(i, j) += a(i, k) * b(k, j);
    return c;
}

void
expectNear(const Matrix &a, const Matrix &b, Real tol = Real(1e-4))
{
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_NEAR(a.data()[i], b.data()[i], tol) << "at " << i;
}

TEST(Matrix, ConstructionAndIndexing)
{
    Matrix m(2, 3);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_EQ(m.size(), 6u);
    m(1, 2) = Real(5);
    EXPECT_EQ(m(1, 2), Real(5));
    EXPECT_EQ(m(0, 0), Real(0));
}

TEST(Matrix, InitializerList)
{
    Matrix m{{1, 2, 3}, {4, 5, 6}};
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_EQ(m(0, 1), Real(2));
    EXPECT_EQ(m(1, 0), Real(4));
}

TEST(Matrix, RowPointersAreContiguous)
{
    Matrix m(3, 4);
    EXPECT_EQ(m.row(1), m.data() + 4);
    EXPECT_EQ(m.row(2), m.data() + 8);
}

TEST(Matrix, ElementwiseOps)
{
    Matrix a{{1, 2}, {3, 4}};
    Matrix b{{10, 20}, {30, 40}};
    a += b;
    EXPECT_EQ(a(1, 1), Real(44));
    a -= b;
    EXPECT_EQ(a(0, 0), Real(1));
    a *= Real(2);
    EXPECT_EQ(a(1, 0), Real(6));
}

TEST(Matrix, Transposed)
{
    Matrix a{{1, 2, 3}, {4, 5, 6}};
    Matrix t = a.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_EQ(t(2, 1), Real(6));
    EXPECT_EQ(t(0, 0), Real(1));
}

TEST(Matrix, CopyRowFrom)
{
    Matrix a(2, 3);
    Matrix b{{7, 8, 9}, {1, 1, 1}};
    a.copyRowFrom(1, b, 0);
    EXPECT_EQ(a(1, 0), Real(7));
    EXPECT_EQ(a(1, 2), Real(9));
    EXPECT_EQ(a(0, 0), Real(0));
}

TEST(Matrix, FillAndZero)
{
    Matrix m(2, 2);
    m.fill(Real(3));
    EXPECT_EQ(m(1, 1), Real(3));
    m.zero();
    EXPECT_EQ(m(0, 0), Real(0));
}

class GemmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(GemmShapes, MatchesReference)
{
    const auto [m, k, n] = GetParam();
    Rng rng(m * 10007 + k * 101 + n);
    Matrix a = randomMatrix(m, k, rng);
    Matrix b = randomMatrix(k, n, rng);
    Matrix c;
    gemm(a, b, c);
    expectNear(c, refGemm(a, b));
}

TEST_P(GemmShapes, TNMatchesReference)
{
    const auto [m, k, n] = GetParam();
    Rng rng(m * 7 + k * 11 + n * 13);
    Matrix at = randomMatrix(k, m, rng); // A^T stored
    Matrix b = randomMatrix(k, n, rng);
    Matrix c;
    gemmTN(at, b, c);
    expectNear(c, refGemm(at.transposed(), b));
}

TEST_P(GemmShapes, NTMatchesReference)
{
    const auto [m, k, n] = GetParam();
    Rng rng(m * 3 + k * 5 + n * 17);
    Matrix a = randomMatrix(m, k, rng);
    Matrix bt = randomMatrix(n, k, rng); // B^T stored
    Matrix c;
    gemmNT(a, bt, c);
    expectNear(c, refGemm(a, bt.transposed()));
}

TEST_P(GemmShapes, AccAccumulates)
{
    const auto [m, k, n] = GetParam();
    Rng rng(m + k + n);
    Matrix a = randomMatrix(m, k, rng);
    Matrix b = randomMatrix(k, n, rng);
    Matrix c(m, n);
    c.fill(Real(1));
    gemmAcc(a, b, c);
    Matrix expected = refGemm(a, b);
    for (std::size_t i = 0; i < expected.size(); ++i)
        expected.data()[i] += Real(1);
    expectNear(c, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1),
                      std::make_tuple(2, 3, 4),
                      std::make_tuple(16, 16, 16),
                      std::make_tuple(7, 65, 9),
                      std::make_tuple(64, 64, 1),
                      std::make_tuple(128, 70, 33),
                      std::make_tuple(1, 100, 1)));

TEST(Ops, AddSubScale)
{
    Matrix a{{1, 2}};
    Matrix b{{3, 4}};
    expectNear(add(a, b), Matrix{{4, 6}});
    expectNear(sub(b, a), Matrix{{2, 2}});
    expectNear(scale(a, 3), Matrix{{3, 6}});
}

TEST(Ops, AddRowBias)
{
    Matrix m{{1, 1}, {2, 2}};
    Matrix bias{{10, 20}};
    addRowBias(m, bias);
    expectNear(m, Matrix{{11, 21}, {12, 22}});
}

TEST(Ops, SumRowsMeanSum)
{
    Matrix m{{1, 2}, {3, 4}};
    expectNear(sumRows(m), Matrix{{4, 6}});
    EXPECT_NEAR(mean(m), 2.5, 1e-6);
    EXPECT_NEAR(sum(m), 10.0, 1e-6);
}

TEST(Ops, MaxAbsAndNonFinite)
{
    Matrix m{{-3, 2}};
    EXPECT_EQ(maxAbs(m), Real(3));
    EXPECT_FALSE(hasNonFinite(m));
    m(0, 0) = std::numeric_limits<Real>::infinity();
    EXPECT_TRUE(hasNonFinite(m));
    m(0, 0) = std::numeric_limits<Real>::quiet_NaN();
    EXPECT_TRUE(hasNonFinite(m));
}

TEST(Ops, SoftmaxRowsSumToOne)
{
    Rng rng(3);
    Matrix m = randomMatrix(8, 5, rng);
    m *= Real(10);
    softmaxRows(m);
    for (std::size_t r = 0; r < m.rows(); ++r) {
        Real total = 0;
        for (std::size_t c = 0; c < m.cols(); ++c) {
            EXPECT_GE(m(r, c), Real(0));
            total += m(r, c);
        }
        EXPECT_NEAR(total, 1.0, 1e-5);
    }
}

TEST(Ops, SoftmaxIsShiftInvariantAndStable)
{
    Matrix a{{1000, 1001, 1002}};
    softmaxRows(a);
    EXPECT_FALSE(hasNonFinite(a));
    Matrix b{{0, 1, 2}};
    softmaxRows(b);
    expectNear(a, b, Real(1e-5));
}

TEST(Ops, SoftmaxBackwardMatchesFiniteDifference)
{
    Rng rng(11);
    Matrix x = randomMatrix(4, 6, rng);
    Matrix g = randomMatrix(4, 6, rng);

    Matrix s = x;
    softmaxRows(s);
    Matrix analytic;
    softmaxBackwardRows(s, g, analytic);

    const Real eps = Real(1e-3);
    for (std::size_t r = 0; r < x.rows(); ++r) {
        for (std::size_t c = 0; c < x.cols(); ++c) {
            Matrix xp = x, xm = x;
            xp(r, c) += eps;
            xm(r, c) -= eps;
            softmaxRows(xp);
            softmaxRows(xm);
            // L = sum(g * softmax(x)) restricted to row r.
            Real lp = 0, lm = 0;
            for (std::size_t j = 0; j < x.cols(); ++j) {
                lp += g(r, j) * xp(r, j);
                lm += g(r, j) * xm(r, j);
            }
            const Real numeric = (lp - lm) / (2 * eps);
            EXPECT_NEAR(analytic(r, c), numeric, 2e-3);
        }
    }
}

TEST(Ops, ArgmaxRows)
{
    Matrix m{{1, 5, 2}, {9, 0, 3}};
    auto idx = argmaxRows(m);
    EXPECT_EQ(idx[0], 1u);
    EXPECT_EQ(idx[1], 0u);
}

TEST(Ops, OneHot)
{
    Matrix oh = oneHot({2, 0}, 3);
    expectNear(oh, Matrix{{0, 0, 1}, {1, 0, 0}});
}

TEST(Ops, GumbelArgmaxFollowsLogits)
{
    // With one dominant logit, the Gumbel draw should pick it the
    // vast majority of the time.
    Rng rng(17);
    Matrix logits{{0, 8, 0, 0, 0}};
    int hits = 0;
    for (int i = 0; i < 1000; ++i)
        hits += gumbelArgmaxRows(logits, rng)[0] == 1;
    EXPECT_GT(hits, 950);
}

TEST(Ops, GumbelArgmaxSamplesDistribution)
{
    // Uniform logits -> roughly uniform picks.
    Rng rng(19);
    Matrix logits(1, 4);
    std::array<int, 4> counts{};
    for (int i = 0; i < 8000; ++i)
        ++counts[gumbelArgmaxRows(logits, rng)[0]];
    for (int c : counts)
        EXPECT_NEAR(c, 2000, 250);
}

TEST(Ops, Hconcat)
{
    Matrix a{{1, 2}, {3, 4}};
    Matrix b{{5}, {6}};
    Matrix c{{7, 8, 9}, {10, 11, 12}};
    Matrix out = hconcat({&a, &b, &c});
    EXPECT_EQ(out.cols(), 6u);
    expectNear(out, Matrix{{1, 2, 5, 7, 8, 9}, {3, 4, 6, 10, 11, 12}});
}

TEST(Ops, ClampInPlace)
{
    Matrix m{{-5, 0, 5}};
    clampInPlace(m, -1, 1);
    expectNear(m, Matrix{{-1, 0, 1}});
}

TEST(Ops, FillGaussianMoments)
{
    Rng rng(23);
    Matrix m(100, 100);
    fillGaussian(m, rng, Real(2));
    EXPECT_NEAR(mean(m), 0.0, 0.05);
    double var = 0;
    for (std::size_t i = 0; i < m.size(); ++i)
        var += static_cast<double>(m.data()[i]) * m.data()[i];
    EXPECT_NEAR(var / m.size(), 4.0, 0.2);
}

} // namespace
} // namespace marlin::numeric
