#include "marlin/nn/mlp.hh"

#include "marlin/base/logging.hh"
#include "marlin/numeric/kernels.hh"

namespace marlin::nn
{

Mlp::Mlp(const MlpConfig &config, Rng &rng) : _config(config)
{
    MARLIN_ASSERT(config.inputDim > 0 && config.outputDim > 0,
                  "Mlp requires nonzero input/output dims");
    std::size_t prev = config.inputDim;
    for (std::size_t h : config.hiddenDims) {
        layers.emplace_back(prev, h, rng);
        acts.emplace_back(config.hiddenActivation);
        prev = h;
    }
    layers.emplace_back(prev, config.outputDim, rng);
    acts.emplace_back(config.outputActivation);
    preact.resize(layers.size());
    postact.resize(layers.size());
}

void
Mlp::forward(const Matrix &x, Matrix &y)
{
    const Matrix *cur = &x;
    for (std::size_t i = 0; i < layers.size(); ++i) {
        layers[i].forward(*cur, preact[i]);
        acts[i].forward(preact[i], postact[i]);
        cur = &postact[i];
    }
    y = *cur;
}

Matrix
Mlp::forward(const Matrix &x)
{
    Matrix y;
    forward(x, y);
    return y;
}

void
Mlp::backward(const Matrix &grad_y, Matrix *grad_x)
{
    MARLIN_ASSERT(!layers.empty(), "backward on empty Mlp");
    Matrix grad = grad_y;
    Matrix next;
    for (std::size_t i = layers.size(); i-- > 0;) {
        Matrix d_pre;
        acts[i].backward(grad, d_pre);
        if (i == 0 && grad_x == nullptr) {
            // Still must accumulate the first layer's weight grads;
            // reuse `next` as a discard buffer.
            layers[i].backward(d_pre, next);
        } else {
            layers[i].backward(d_pre, next);
        }
        grad = next;
    }
    if (grad_x)
        *grad_x = grad;
}

std::vector<Param *>
Mlp::params()
{
    std::vector<Param *> out;
    for (auto &layer : layers)
        for (Param *p : layer.params())
            out.push_back(p);
    return out;
}

std::vector<const Param *>
Mlp::params() const
{
    std::vector<const Param *> out;
    for (const auto &layer : layers)
        for (const Param *p : layer.params())
            out.push_back(p);
    return out;
}

std::size_t
Mlp::paramCount() const
{
    std::size_t n = 0;
    for (const Param *p : params())
        n += p->value.size();
    return n;
}

void
Mlp::zeroGrad()
{
    for (Param *p : params())
        p->zeroGrad();
}

void
Mlp::copyFrom(const Mlp &src)
{
    auto dst_params = params();
    auto src_params = src.params();
    MARLIN_ASSERT(dst_params.size() == src_params.size(),
                  "copyFrom network shape mismatch");
    for (std::size_t i = 0; i < dst_params.size(); ++i)
        dst_params[i]->value = src_params[i]->value;
}

void
Mlp::softUpdateFrom(const Mlp &src, Real tau)
{
    auto dst_params = params();
    auto src_params = src.params();
    MARLIN_ASSERT(dst_params.size() == src_params.size(),
                  "softUpdateFrom network shape mismatch");
    const numeric::kernels::KernelTable &kt =
        numeric::kernels::active();
    for (std::size_t i = 0; i < dst_params.size(); ++i) {
        Matrix &d = dst_params[i]->value;
        const Matrix &s = src_params[i]->value;
        MARLIN_ASSERT(d.size() == s.size(), "param size mismatch");
        kt.softUpdate(tau, s.data(), d.data(), d.size());
    }
}

} // namespace marlin::nn
