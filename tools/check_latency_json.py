#!/usr/bin/env python3
"""Validate marlin_loadgen latency reports in CI's serve-smoke job.

The loadgen JSON is the serving tier's CI contract:

    {"bench": "marlin_loadgen", "commit": "...",
     "runs": [{"connections": N, "requests": N, "responses": N,
               "errors": N, "dropped_connections": N,
               "duration_s": S, "qps": Q,
               "p50_us": U, "p99_us": U,
               "latency_hist": [{"le_us": B, "count": C}, ...,
                                {"le_us": "+Inf", "count": C}]},
              ...]}

Checked invariants:
  - the document parses with no NaN/Infinity tokens anywhere
  - "bench" is "marlin_loadgen" and "commit" is non-empty
  - every run's counters are non-negative integers and consistent
    (responses + losses cannot exceed requests; p50 <= p99)
  - the latency histogram is cumulative: bucket bounds strictly
    increase, counts are monotone non-decreasing, and the final
    "+Inf" bucket counts every recorded response
  - with --require-zero-drops, every run finished with zero errors
    and zero dropped connections (the hot-reload drill's assertion)
  - with --min-connection-counts N, at least N distinct connection
    counts were measured (the latency-vs-connections curve needs
    more than one point)

Usage: check_latency_json.py LOADGEN_JSON
           [--require-zero-drops] [--min-connection-counts N]
"""

import argparse
import json
import math
import sys


def fail(msg: str) -> None:
    print(f"check_latency_json: {msg}", file=sys.stderr)
    sys.exit(1)


def reject_non_finite(token: str) -> None:
    fail(f"non-finite JSON value {token!r}")


def check_finite_numbers(node, path: str) -> None:
    if isinstance(node, float) and not math.isfinite(node):
        fail(f"non-finite metric value at {path}")
    elif isinstance(node, dict):
        for key, value in node.items():
            check_finite_numbers(value, f"{path}.{key}")
    elif isinstance(node, list):
        for i, value in enumerate(node):
            check_finite_numbers(value, f"{path}[{i}]")


def get_count(run: dict, key: str, where: str) -> int:
    value = run.get(key)
    if not isinstance(value, int) or value < 0:
        fail(f"{where}.{key} is not a non-negative integer: {value!r}")
    return value


def check_histogram(hist, responses: int, where: str) -> None:
    if not isinstance(hist, list) or not hist:
        fail(f"{where}.latency_hist is missing or empty")
    prev_le = None
    prev_count = -1
    for i, bucket in enumerate(hist):
        if not isinstance(bucket, dict):
            fail(f"{where}.latency_hist[{i}] is not an object")
        le = bucket.get("le_us")
        count = bucket.get("count")
        if not isinstance(count, int) or count < 0:
            fail(f"{where}.latency_hist[{i}].count is bad: {count!r}")
        last = i == len(hist) - 1
        if last:
            if le != "+Inf":
                fail(f"{where}.latency_hist must end with le_us '+Inf'")
        else:
            if not isinstance(le, (int, float)) or isinstance(le, bool):
                fail(f"{where}.latency_hist[{i}].le_us is bad: {le!r}")
            if prev_le is not None and le <= prev_le:
                fail(
                    f"{where}.latency_hist bounds not increasing at "
                    f"index {i}: {le!r} after {prev_le!r}"
                )
            prev_le = le
        if count < prev_count:
            fail(
                f"{where}.latency_hist counts not cumulative at "
                f"index {i}: {count} after {prev_count}"
            )
        prev_count = count
    if hist[-1]["count"] != responses:
        fail(
            f"{where}.latency_hist '+Inf' bucket counts "
            f"{hist[-1]['count']} but the run recorded "
            f"{responses} response(s)"
        )


def check_run(run: dict, index: int, require_zero_drops: bool) -> int:
    where = f"runs[{index}]"
    if not isinstance(run, dict):
        fail(f"{where} is not an object")
    connections = get_count(run, "connections", where)
    if connections < 1:
        fail(f"{where}.connections must be at least 1")
    requests = get_count(run, "requests", where)
    responses = get_count(run, "responses", where)
    errors = get_count(run, "errors", where)
    dropped = get_count(run, "dropped_connections", where)
    if responses > requests:
        fail(f"{where} answered more requests than it sent")
    if errors > responses:
        fail(f"{where} counts more errors than responses")
    duration = run.get("duration_s")
    if not isinstance(duration, (int, float)) or duration <= 0:
        fail(f"{where}.duration_s is not positive: {duration!r}")
    qps = run.get("qps")
    if not isinstance(qps, (int, float)) or qps < 0:
        fail(f"{where}.qps is bad: {qps!r}")
    p50 = get_count(run, "p50_us", where)
    p99 = get_count(run, "p99_us", where)
    if p50 > p99:
        fail(f"{where} has p50 {p50}us above p99 {p99}us")
    check_histogram(run.get("latency_hist"), responses, where)
    if require_zero_drops and (errors > 0 or dropped > 0):
        fail(
            f"{where} saw {errors} error(s) and {dropped} dropped "
            f"connection(s); the gate requires zero"
        )
    return connections


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Validate a marlin_loadgen JSON report."
    )
    parser.add_argument("json_path")
    parser.add_argument(
        "--require-zero-drops",
        action="store_true",
        help="fail when any run saw errors or dropped connections",
    )
    parser.add_argument(
        "--min-connection-counts",
        type=int,
        default=1,
        metavar="N",
        help="require at least N distinct connection counts",
    )
    args = parser.parse_args()

    try:
        with open(args.json_path, encoding="utf-8") as f:
            doc = json.load(f, parse_constant=reject_non_finite)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {args.json_path}: {e}")
    check_finite_numbers(doc, "$")

    if doc.get("bench") != "marlin_loadgen":
        fail(f"'bench' is {doc.get('bench')!r}, not 'marlin_loadgen'")
    commit = doc.get("commit")
    if not isinstance(commit, str) or not commit:
        fail("'commit' is missing or empty")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        fail("'runs' is missing or empty")

    seen = set()
    for i, run in enumerate(runs):
        seen.add(check_run(run, i, args.require_zero_drops))
    if len(seen) < args.min_connection_counts:
        fail(
            f"only {len(seen)} distinct connection count(s) measured; "
            f"need {args.min_connection_counts}"
        )
    print(
        f"ok: {len(runs)} run(s) at connection counts "
        f"{sorted(seen)} in {args.json_path}"
    )


if __name__ == "__main__":
    main()
