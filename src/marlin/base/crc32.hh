/**
 * @file
 * CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over byte ranges.
 *
 * Used as the per-section integrity footer of version-2 checkpoint
 * files: a torn write or a flipped byte is detected at load time
 * instead of silently resuming training from corrupt state.
 */

#ifndef MARLIN_BASE_CRC32_HH
#define MARLIN_BASE_CRC32_HH

#include <cstddef>
#include <cstdint>

namespace marlin
{

/**
 * Continue a CRC-32 computation over @p len bytes at @p data.
 *
 * @param crc Running checksum (pass 0 to start a fresh one).
 * @return The updated checksum.
 */
std::uint32_t crc32(std::uint32_t crc, const void *data,
                    std::size_t len);

/** One-shot CRC-32 of a byte range. */
inline std::uint32_t
crc32(const void *data, std::size_t len)
{
    return crc32(0, data, len);
}

} // namespace marlin

#endif // MARLIN_BASE_CRC32_HH
