#!/usr/bin/env python3
"""Validate MARLin bench output in CI's bench-smoke job.

Two artifacts are checked:

  1. The bench's stdout, which must contain the machine-readable
     banner line every MARLin bench emits:
         {"bench": "...", "threads": N, "isa": "...", "commit": "..."}
     Downstream tooling keys throughput numbers on those fields, so
     a bench that stops emitting them (or emits invalid JSON) must
     fail CI, not silently produce unattributable data.

     "actors" is validated when present: benches that sweep rollout
     actor counts declare it, single-loop benches need not. Likewise
     "replay_shards" (declared by replay-engine benches): it must be
     a power-of-two integer, since shard count changes the storage
     walk and numbers must never be misattributed across it.

  2. The google-benchmark --benchmark_out JSON file, which must
     parse and contain a non-empty "benchmarks" array with real_time
     readings.

NaN and Infinity are syntactically valid to Python's json module but
poison downstream dashboards silently, so any NaN/Inf token anywhere
in either artifact fails the check.

Usage: check_bench_json.py STDOUT_FILE BENCHMARK_JSON_FILE
"""

import json
import math
import sys


def fail(msg: str) -> None:
    print(f"check_bench_json: {msg}", file=sys.stderr)
    sys.exit(1)


def reject_non_finite(token: str) -> None:
    """parse_constant hook: NaN/Infinity tokens fail the check."""
    fail(f"non-finite JSON value {token!r}")


def check_finite_numbers(node, path: str) -> None:
    """Recursively reject float('nan')/inf that snuck past parsing."""
    if isinstance(node, float) and not math.isfinite(node):
        fail(f"non-finite metric value at {path}")
    elif isinstance(node, dict):
        for key, value in node.items():
            check_finite_numbers(value, f"{path}.{key}")
    elif isinstance(node, list):
        for i, value in enumerate(node):
            check_finite_numbers(value, f"{path}[{i}]")


def check_banner(stdout_path: str) -> None:
    banners = []
    with open(stdout_path, encoding="utf-8", errors="replace") as f:
        for line in f:
            line = line.strip()
            if not (line.startswith("{") and line.endswith("}")):
                continue
            try:
                banners.append(
                    json.loads(line, parse_constant=reject_non_finite)
                )
            except json.JSONDecodeError as e:
                fail(f"malformed banner line {line!r}: {e}")
    if not banners:
        fail(f"no JSON banner line found in {stdout_path}")
    for banner in banners:
        check_finite_numbers(banner, "banner")
        for key in ("bench", "threads", "isa", "commit"):
            if key not in banner:
                fail(f"banner {banner!r} is missing key {key!r}")
        if not isinstance(banner["threads"], int) or banner["threads"] < 1:
            fail(f"banner {banner!r} has a bad thread count")
        if "actors" in banner and (
            not isinstance(banner["actors"], int) or banner["actors"] < 1
        ):
            fail(f"banner {banner!r} has a bad actor count")
        if "replay_shards" in banner and (
            not isinstance(banner["replay_shards"], int)
            or banner["replay_shards"] < 1
            or banner["replay_shards"] & (banner["replay_shards"] - 1)
        ):
            fail(
                f"banner {banner!r} has a bad replay_shards value "
                "(must be a power-of-two integer >= 1)"
            )
        if banner["isa"] not in ("scalar", "avx2"):
            fail(f"banner {banner!r} has unknown isa {banner['isa']!r}")
        if not isinstance(banner["commit"], str) or not banner["commit"]:
            fail(f"banner {banner!r} has an empty commit")
    print(f"ok: {len(banners)} banner line(s) in {stdout_path}")


def check_benchmark_out(json_path: str) -> None:
    try:
        with open(json_path, encoding="utf-8") as f:
            doc = json.load(f, parse_constant=reject_non_finite)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {json_path}: {e}")
    runs = doc.get("benchmarks")
    if not isinstance(runs, list) or not runs:
        fail(f"{json_path} has no benchmark runs")
    for run in runs:
        if "error_occurred" in run and run["error_occurred"]:
            # Skipped variants (e.g. avx2 on a non-AVX2 runner) are
            # fine; a run that errored for any other reason is not.
            msg = run.get("error_message", "")
            if "not available" not in msg:
                fail(f"benchmark {run.get('name')!r} errored: {msg}")
            continue
        if "real_time" not in run:
            fail(f"benchmark {run.get('name')!r} has no real_time")
        check_finite_numbers(run, f"benchmarks[{run.get('name')}]")
    print(f"ok: {len(runs)} benchmark run(s) in {json_path}")


def main() -> None:
    if len(sys.argv) != 3:
        fail("usage: check_bench_json.py STDOUT_FILE BENCH_JSON_FILE")
    check_banner(sys.argv[1])
    check_benchmark_out(sys.argv[2])


if __name__ == "__main__":
    main()
