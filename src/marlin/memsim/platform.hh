/**
 * @file
 * Platform presets mirroring the paper's evaluation hardware: the
 * primary AMD Ryzen Threadripper 3975WX host (Table II) and the
 * Intel i7-9700K used for cross-validation (Section VI-B), plus the
 * GPU device models for the RTX 3090 and GTX 1070.
 */

#ifndef MARLIN_MEMSIM_PLATFORM_HH
#define MARLIN_MEMSIM_PLATFORM_HH

#include <string>

#include "marlin/memsim/device_model.hh"
#include "marlin/memsim/hierarchy.hh"

namespace marlin::memsim
{

/** Known platform presets. */
enum class PlatformId
{
    Threadripper3975WX, ///< Paper Table II host.
    CoreI7_9700K,       ///< Cross-validation host (Fig. 12/13).
};

/** Everything the benches need to model one evaluation platform. */
struct PlatformPreset
{
    std::string name;
    HierarchyConfig hierarchy;
    /** Nominal core frequency (Hz) for cycle->second conversion. */
    double frequencyHz = 3.5e9;
};

/** Build the preset for @p id. */
PlatformPreset makePlatform(PlatformId id);

/** Parse "threadripper" / "i7-9700k" (case-sensitive). */
PlatformId platformFromString(const std::string &name);

} // namespace marlin::memsim

#endif // MARLIN_MEMSIM_PLATFORM_HH
