/**
 * @file
 * Cross-module property tests: parameterized sweeps asserting the
 * invariants the paper's experiments depend on (cache geometry
 * behaviour, sampler contiguity under odd batch sizes, physics
 * conservation, layout equivalence under randomized shapes, loss
 * descent).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "marlin/env/world.hh"
#include "marlin/memsim/cache.hh"
#include "marlin/memsim/tlb.hh"
#include "marlin/nn/adam.hh"
#include "marlin/nn/loss.hh"
#include "marlin/nn/mlp.hh"
#include "marlin/numeric/ops.hh"
#include "marlin/replay/gather.hh"
#include "marlin/replay/interleaved_store.hh"
#include "marlin/replay/locality_sampler.hh"
#include "marlin/replay/prioritized_sampler.hh"
#include "marlin/replay/uniform_sampler.hh"

namespace marlin
{
namespace
{

// --- Cache geometry sweep ------------------------------------------

class CacheGeometry
    : public ::testing::TestWithParam<std::pair<std::uint64_t,
                                                std::uint32_t>>
{
};

TEST_P(CacheGeometry, ResidentWorkingSetHitsAfterWarmup)
{
    const auto [size, ways] = GetParam();
    memsim::CacheModel cache({size, 64, ways});
    const std::uint64_t lines = size / 64;
    for (std::uint64_t l = 0; l < lines; ++l)
        cache.access(l * 64);
    const auto misses_cold = cache.stats().misses;
    for (std::uint64_t l = 0; l < lines; ++l)
        cache.access(l * 64);
    // Second sweep of a cache-resident set must be all hits.
    EXPECT_EQ(cache.stats().misses, misses_cold);
    EXPECT_EQ(cache.stats().hits, lines);
}

TEST_P(CacheGeometry, OversizedWorkingSetThrashes)
{
    const auto [size, ways] = GetParam();
    memsim::CacheModel cache({size, 64, ways});
    const std::uint64_t lines = 4 * size / 64;
    for (int rep = 0; rep < 3; ++rep)
        for (std::uint64_t l = 0; l < lines; ++l)
            cache.access(l * 64);
    EXPECT_GT(cache.stats().missRate(), 0.99);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::make_pair(4096, 1),
                      std::make_pair(4096, 4),
                      std::make_pair(32768, 8),
                      std::make_pair(262144, 16)));

TEST(TlbProperty, PageStrideBeyondCapacityAlwaysMisses)
{
    memsim::TlbModel tlb({64, 8, 4096});
    // Touch 4x the TLB's page capacity repeatedly.
    for (int rep = 0; rep < 3; ++rep)
        for (std::uint64_t p = 0; p < 256; ++p)
            tlb.access(p * 4096);
    EXPECT_GT(tlb.stats().missRate(), 0.99);
}

TEST(TlbProperty, IntraPageLocalityAlwaysHitsAfterFirst)
{
    memsim::TlbModel tlb({64, 8, 4096});
    for (std::uint64_t off = 0; off < 4096; off += 64)
        tlb.access(1234 * 4096 + off);
    EXPECT_EQ(tlb.stats().misses, 1u);
}

// --- Sampler properties --------------------------------------------

class LocalityOddBatches : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(LocalityOddBatches, ExactBatchAndValidIndices)
{
    const std::size_t batch = GetParam();
    replay::LocalityAwareSampler sampler({16, 0});
    Rng rng(batch);
    auto plan = sampler.plan(100000, batch, rng);
    EXPECT_EQ(plan.batchSize(), batch);
    for (auto i : plan.indices)
        EXPECT_LT(i, 100000u);
}

INSTANTIATE_TEST_SUITE_P(Batches, LocalityOddBatches,
                         ::testing::Values(1, 7, 15, 17, 100, 1000,
                                           1023, 1025));

class PerAlphaSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(PerAlphaSweep, HigherPriorityNeverSampledLess)
{
    const double alpha = GetParam();
    replay::PerConfig cfg;
    cfg.capacity = 8;
    cfg.alpha = static_cast<Real>(alpha);
    replay::PrioritizedSampler sampler(cfg);
    std::vector<BufferIndex> ids = {0, 1, 2, 3, 4, 5, 6, 7};
    std::vector<Real> tds = {8, 7, 6, 5, 4, 3, 2, 1};
    sampler.updatePriorities(ids, tds);
    Rng rng(7);
    std::array<int, 8> counts{};
    for (int rep = 0; rep < 400; ++rep) {
        auto plan = sampler.plan(8, 32, rng);
        for (auto i : plan.indices)
            ++counts[i];
    }
    // Monotone priorities -> monotone (within noise) sample counts.
    for (int i = 0; i + 1 < 8; ++i)
        EXPECT_GE(counts[i] + 400, counts[i + 1])
            << "alpha " << alpha << " slot " << i;
    if (alpha > 0)
        EXPECT_GT(counts[0], counts[7]);
}

INSTANTIATE_TEST_SUITE_P(Alphas, PerAlphaSweep,
                         ::testing::Values(0.0, 0.4, 0.6, 1.0));

// --- Physics properties --------------------------------------------

TEST(PhysicsProperty, MomentumExchangeScalesWithInverseMass)
{
    env::World w;
    env::Agent light, heavy;
    light.movable = heavy.movable = true;
    light.collide = heavy.collide = true;
    light.size = heavy.size = Real(0.1);
    light.mass = Real(1);
    heavy.mass = Real(4);
    light.pos = {0, 0};
    heavy.pos = {0.12f, 0};
    w.agents = {light, heavy};
    w.step();
    // Equal and opposite force => velocity magnitudes scale as 1/m.
    const Real v_light = std::abs(w.agents[0].vel.x);
    const Real v_heavy = std::abs(w.agents[1].vel.x);
    EXPECT_NEAR(v_light / v_heavy, 4.0, 0.05);
}

class DampingSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(DampingSweep, FreeVelocityDecaysGeometrically)
{
    env::WorldConfig cfg;
    cfg.damping = static_cast<Real>(GetParam());
    env::World w(cfg);
    env::Agent a;
    a.movable = true;
    a.collide = false;
    a.vel = {1, 0};
    w.agents.push_back(a);
    for (int t = 1; t <= 5; ++t) {
        w.step();
        EXPECT_NEAR(w.agents[0].vel.x,
                    std::pow(1.0 - GetParam(), t), 1e-4);
    }
}

INSTANTIATE_TEST_SUITE_P(Dampings, DampingSweep,
                         ::testing::Values(0.1, 0.25, 0.5));

// --- Layout equivalence under randomized shapes ---------------------

class ShapeSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ShapeSeeds, InterleavedAlwaysMatchesPerAgent)
{
    Rng meta(GetParam());
    const std::size_t agents = 1 + meta.randint(5);
    std::vector<replay::TransitionShape> shapes;
    for (std::size_t a = 0; a < agents; ++a)
        shapes.push_back({1 + meta.randint(40), 1 + meta.randint(8)});

    const BufferIndex capacity = 64;
    replay::MultiAgentBuffer soa(shapes, capacity);
    replay::InterleavedReplayStore store(shapes, capacity);

    std::vector<std::vector<Real>> obs(agents), act(agents),
        next(agents);
    std::vector<Real> rew(agents);
    std::vector<bool> done(agents);
    for (int t = 0; t < 100; ++t) {
        for (std::size_t a = 0; a < agents; ++a) {
            obs[a].resize(shapes[a].obsDim);
            next[a].resize(shapes[a].obsDim);
            act[a].assign(shapes[a].actDim, Real(0));
            act[a][meta.randint(shapes[a].actDim)] = Real(1);
            for (auto &v : obs[a])
                v = meta.uniformf();
            for (auto &v : next[a])
                v = meta.uniformf();
            rew[a] = meta.uniformf();
            done[a] = meta.uniform() < 0.2;
        }
        soa.add(obs, act, rew, next, done);
        store.append(obs, act, rew, next, done);
    }

    replay::UniformSampler sampler;
    Rng rng(GetParam() + 1);
    auto plan = sampler.plan(soa.size(), 32, rng);
    std::vector<replay::AgentBatch> a_batches, b_batches;
    replay::gatherAllAgents(soa, plan, a_batches);
    store.gatherAllAgents(plan, b_batches);
    for (std::size_t a = 0; a < agents; ++a) {
        EXPECT_EQ(a_batches[a].obs, b_batches[a].obs);
        EXPECT_EQ(a_batches[a].actions, b_batches[a].actions);
        EXPECT_EQ(a_batches[a].rewards, b_batches[a].rewards);
        EXPECT_EQ(a_batches[a].nextObs, b_batches[a].nextObs);
        EXPECT_EQ(a_batches[a].dones, b_batches[a].dones);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShapeSeeds,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- Optimization descent property ----------------------------------

class DescentShapes
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(DescentShapes, AdamStepReducesLossFromFreshInit)
{
    const auto [in, out] = GetParam();
    Rng rng(in * 13 + out);
    nn::MlpConfig cfg;
    cfg.inputDim = static_cast<std::size_t>(in);
    cfg.hiddenDims = {16};
    cfg.outputDim = static_cast<std::size_t>(out);
    nn::Mlp net(cfg, rng);
    nn::AdamConfig acfg;
    acfg.lr = Real(1e-3);
    nn::AdamOptimizer opt(net.params(), acfg);

    numeric::Matrix x(16, cfg.inputDim), y(16, cfg.outputDim);
    numeric::fillUniform(x, rng, -1, 1);
    numeric::fillUniform(y, rng, -1, 1);

    numeric::Matrix pred = net.forward(x);
    numeric::Matrix g;
    const Real before = nn::mseLoss(pred, y, g);
    net.backward(g);
    opt.step();
    numeric::Matrix g2;
    const Real after = nn::mseLoss(net.forward(x), y, g2);
    EXPECT_LT(after, before);
}

INSTANTIATE_TEST_SUITE_P(Shapes, DescentShapes,
                         ::testing::Values(std::make_pair(2, 1),
                                           std::make_pair(8, 3),
                                           std::make_pair(20, 5)));

// --- Softmax relaxation property -------------------------------------

TEST(SoftmaxProperty, GradientsSumToZeroPerRow)
{
    // Softmax outputs are constrained to the simplex, so valid
    // input gradients must have zero row-sum.
    Rng rng(99);
    numeric::Matrix x(6, 5), g(6, 5);
    numeric::fillUniform(x, rng, -2, 2);
    numeric::fillUniform(g, rng, -1, 1);
    numeric::Matrix s = x;
    numeric::softmaxRows(s);
    numeric::Matrix dx;
    numeric::softmaxBackwardRows(s, g, dx);
    for (std::size_t r = 0; r < dx.rows(); ++r) {
        Real sum = 0;
        for (std::size_t c = 0; c < dx.cols(); ++c)
            sum += dx(r, c);
        EXPECT_NEAR(sum, 0.0, 1e-5);
    }
}

} // namespace
} // namespace marlin
