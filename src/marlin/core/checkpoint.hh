/**
 * @file
 * Trainer checkpointing: save/restore every agent's networks and
 * optimizer state so long MARL runs (the paper's take days at 24+
 * agents) can stop and resume.
 */

#ifndef MARLIN_CORE_CHECKPOINT_HH
#define MARLIN_CORE_CHECKPOINT_HH

#include <iostream>
#include <string>

#include "marlin/core/maddpg.hh"

namespace marlin::core
{

/** Magic tag of MARLin trainer checkpoints ("MRLC"). */
inline constexpr std::uint32_t checkpointMagic = 0x4d524c43;

/** Current checkpoint format version. */
inline constexpr std::uint32_t checkpointVersion = 1;

/**
 * Serialize @p trainer (all agents' actor/critic/target networks +
 * Adam moments) to a stream.
 */
void saveTrainer(std::ostream &os, CtdeTrainerBase &trainer);

/**
 * Restore a checkpoint into an architecture-matching trainer.
 * Fatal on magic/shape/algorithm mismatch.
 */
void loadTrainer(std::istream &is, CtdeTrainerBase &trainer);

/** Convenience file wrappers; fatal on IO failure. */
void saveTrainerFile(const std::string &path,
                     CtdeTrainerBase &trainer);
void loadTrainerFile(const std::string &path,
                     CtdeTrainerBase &trainer);

} // namespace marlin::core

#endif // MARLIN_CORE_CHECKPOINT_HH
