/**
 * @file
 * Deterministic fault injection for crash-safety and chaos testing.
 *
 * Long MARL runs die in more ways than a unit test naturally covers:
 * the process is killed mid-step, a checkpoint write fails partway
 * through, bytes rot on disk — and, once the runtime is multi-
 * threaded, an actor thread crashes, wedges, or emits poisoned
 * transitions. FaultInjector reproduces all of them on demand,
 * seeded so a failing test replays bit-identically:
 *
 *  - kill-at-step-N: the training loop polls onStep() once per
 *    environment step and abandons the run when the armed step is
 *    reached (equivalent to SIGKILL as far as on-disk state goes);
 *  - fail-the-Kth-write: FailpointStreambuf wraps a checkpoint
 *    stream and fails write K and everything after it, like a disk
 *    going away mid-checkpoint;
 *  - corrupt-byte-M: corruptFileByte() flips bits of a file in
 *    place, exercising the CRC detection and latest->previous
 *    fallback paths;
 *  - chaos schedule: a list of one-shot FaultEvents (kill an actor
 *    thread at its Nth local step, stall it for M ms, corrupt the
 *    transition it is about to publish, kill the learner after D
 *    drained records, delay a snapshot publication) polled from the
 *    async runtime's hook points.
 *
 * Thread contract: arm everything (armKillAtStep, scheduleFault,
 * parseChaosSpec...) before worker threads start. The hook methods
 * (onStep, onWrite, onActorStep, onLearnerDrain, onSnapshotPublish)
 * and all counters are then safe to call concurrently from any
 * thread — counters are relaxed atomics, and each scheduled event
 * fires exactly once via a compare-exchange on its own flag.
 */

#ifndef MARLIN_BASE_FAULT_INJECTOR_HH
#define MARLIN_BASE_FAULT_INJECTOR_HH

#include <array>
#include <atomic>
#include <deque>
#include <stdexcept>
#include <streambuf>
#include <string>
#include <vector>

#include "marlin/base/random.hh"

namespace marlin::base
{

/** What a scheduled chaos event does when it fires. */
enum class FaultKind : std::uint8_t
{
    KillActor,         ///< Throw InjectedFault on the actor thread.
    StallActor,        ///< Sleep the actor thread for millis.
    CorruptTransition, ///< Poison the next packed record with NaN.
    KillLearner,       ///< Throw InjectedFault on the learner thread.
    DelaySnapshot,     ///< Sleep millis before a snapshot publish.
};

inline constexpr std::size_t numFaultKinds = 5;

/** Stable lower-case name for a FaultKind ("kill-actor"). */
const char *faultKindName(FaultKind kind);

/** One scheduled one-shot fault. */
struct FaultEvent
{
    FaultKind kind = FaultKind::KillActor;
    /** Target actor (ignored for learner/snapshot kinds). */
    std::size_t actorId = 0;
    /**
     * When to fire: actor-local env step for actor kinds, total
     * drained records for KillLearner, publication ordinal for
     * DelaySnapshot. Fires at the first hook call with
     * progress >= atStep.
     */
    std::uint64_t atStep = 0;
    /** Stall/delay duration (StallActor, DelaySnapshot). */
    std::uint64_t millis = 0;
};

/** What an actor must do right now (merged over fired events). */
struct ActorFaultAction
{
    bool kill = false;
    bool corrupt = false;
    std::uint64_t stallMs = 0;
};

/**
 * Thrown by workers when a scheduled kill fires; the WorkerThread
 * trampoline catches it and the supervisor applies policy.
 */
class InjectedFault : public std::runtime_error
{
  public:
    explicit InjectedFault(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {
    }
};

/** Seeded, reproducible source of injected faults. */
class FaultInjector
{
  public:
    explicit FaultInjector(std::uint64_t seed = 0) : rng(seed) {}

    /** Arm a simulated kill at absolute environment step @p step. */
    void
    armKillAtStep(StepCount step)
    {
        killStep.store(step, std::memory_order_relaxed);
        killArmed.store(true, std::memory_order_release);
    }

    /**
     * Arm a kill at a step drawn uniformly from [lo, hi] using the
     * injector's own seeded stream.
     * @return The chosen step, for test logging.
     */
    StepCount armKillAtRandomStep(StepCount lo, StepCount hi);

    /**
     * Training-loop hook, called once per environment step.
     * @return true exactly when the armed kill step is reached (the
     *         caller must then abandon the run without cleanup).
     */
    bool onStep();

    /** Steps observed so far (survives disarm). */
    StepCount
    stepsObserved() const
    {
        return steps.load(std::memory_order_relaxed);
    }

    /** Arm a failure of the @p kth stream write (1-based). */
    void
    armFailAtWrite(std::uint64_t kth)
    {
        failWrite.store(kth, std::memory_order_relaxed);
        failArmed.store(true, std::memory_order_release);
    }

    /**
     * Stream-wrapper hook, called before every buffered write.
     * @return false when the write (and, sticky, every later one)
     *         must fail.
     */
    bool onWrite();

    std::uint64_t
    writesObserved() const
    {
        return writes.load(std::memory_order_relaxed);
    }

    /** Disarm the kill/write faults (counters keep running; the
     *  chaos schedule is one-shot and fixed once threads start, so
     *  it is not touched). */
    void disarm();

    // --- Chaos schedule (async runtime) ---------------------------

    /** Append one event to the schedule. Arm before threads start. */
    void scheduleFault(const FaultEvent &event);

    /**
     * Parse a chaos spec into scheduled events. Grammar, comma
     * separated, one token per event:
     *
     *   kill:<actor>@<step>           kill actor at local step
     *   stall:<actor>@<step>:<ms>     stall actor for ms
     *   corrupt:<actor>@<step>        NaN-poison one transition
     *   kill-learner@<drained>        kill learner thread
     *   delay-snap@<ordinal>:<ms>     delay a snapshot publish
     *
     * e.g. "kill:1@120,stall:2@200:50,corrupt:0@300". On a malformed
     * token nothing is scheduled, @p error (optional) gets a
     * description and false is returned.
     */
    bool parseChaosSpec(const std::string &spec,
                        std::string *error = nullptr);

    /**
     * Schedule @p events random actor faults (kill/stall/corrupt,
     * uniform) over @p num_actors actors and local steps
     * [1, max_step], drawn from the injector's seeded stream.
     * Stalls last 1-20 ms. @return the generated schedule, for
     * test logging.
     */
    std::vector<FaultEvent>
    scheduleRandomChaos(std::size_t num_actors, std::uint64_t max_step,
                        std::size_t events);

    /** Scheduled events (armed + already fired), for logging. */
    std::vector<FaultEvent> scheduledFaults() const;

    /**
     * Actor hook, called once per env step on the actor thread.
     * Fires every due unfired event for @p actor_id and merges them:
     * stall first, then corrupt, then kill, so one call can both
     * poison a record and die. The caller sleeps stallMs itself
     * (keeps this layer clock-free), corrupts its next packed
     * record, and throws InjectedFault on kill.
     */
    ActorFaultAction onActorStep(std::size_t actor_id,
                                 std::uint64_t local_step);

    /**
     * Learner hook, called per drain cycle with total drained
     * records. @return true when a KillLearner event fires (the
     * caller throws).
     */
    bool onLearnerDrain(std::uint64_t drained_total);

    /**
     * Learner hook, called before snapshot publication @p ordinal
     * (1-based). @return ms to sleep before publishing (0 = none).
     */
    std::uint64_t onSnapshotPublish(std::uint64_t ordinal);

    /** Times a fault of @p kind fired (any thread, relaxed). */
    std::uint64_t
    tripCount(FaultKind kind) const
    {
        return trips[static_cast<std::size_t>(kind)].load(
            std::memory_order_relaxed);
    }

    /** Total fired events over all kinds. */
    std::uint64_t tripTotal() const;

  private:
    struct ScheduledFault
    {
        FaultEvent event;
        std::atomic<bool> fired{false};

        ScheduledFault() = default;
        explicit ScheduledFault(const FaultEvent &e) : event(e) {}
    };

    /** CAS @p slot unfired->fired; counts the trip on success. */
    bool tryFire(ScheduledFault &slot);

    Rng rng;
    std::atomic<StepCount> killStep{0};
    std::atomic<bool> killArmed{false};
    std::atomic<StepCount> steps{0};
    std::atomic<std::uint64_t> failWrite{0};
    std::atomic<bool> failArmed{false};
    std::atomic<bool> writeDead{false};
    std::atomic<std::uint64_t> writes{0};

    /** deque: scheduleFault never invalidates slots' atomics.
     *  Mutated only while single-threaded (arm-before-run). */
    std::deque<ScheduledFault> schedule;
    std::array<std::atomic<std::uint64_t>, numFaultKinds> trips{};
};

/**
 * XOR one byte of @p path at @p offset with @p mask in place.
 * @return false when the file cannot be opened or is too short.
 */
bool corruptFileByte(const std::string &path, std::uint64_t offset,
                     unsigned char mask = 0xff);

/**
 * streambuf decorator that consults a FaultInjector before every
 * write. After the armed write fails the buffer stays dead, so the
 * wrapped stream's badbit reports the failure to the checkpoint
 * writer exactly like a real ENOSPC/EIO would.
 */
class FailpointStreambuf : public std::streambuf
{
  public:
    /**
     * @param inner_buf Destination buffer (not owned).
     * @param injector Fault source (not owned; may be null = passthrough).
     */
    FailpointStreambuf(std::streambuf *inner_buf,
                       FaultInjector *injector_in)
        : inner(inner_buf), injector(injector_in)
    {
    }

  protected:
    int_type overflow(int_type ch) override;
    std::streamsize xsputn(const char *s, std::streamsize n) override;
    int sync() override;

  private:
    std::streambuf *inner;
    FaultInjector *injector;
};

} // namespace marlin::base

#endif // MARLIN_BASE_FAULT_INJECTOR_HH
