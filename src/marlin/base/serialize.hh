/**
 * @file
 * Minimal binary serialization helpers: little-endian PODs and
 * length-prefixed vectors/strings over std::iostream, with a
 * magic+version header utility for checkpoint files.
 */

#ifndef MARLIN_BASE_SERIALIZE_HH
#define MARLIN_BASE_SERIALIZE_HH

#include <cstdint>
#include <iostream>
#include <string>
#include <type_traits>
#include <vector>

#include "marlin/base/logging.hh"
#include "marlin/base/random.hh"

namespace marlin
{

/** Write a trivially-copyable value. */
template <typename T>
void
writePod(std::ostream &os, const T &value)
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "writePod requires a trivially copyable type");
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

/** Read a trivially-copyable value; fatal on short read. */
template <typename T>
T
readPod(std::istream &is)
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "readPod requires a trivially copyable type");
    T value{};
    is.read(reinterpret_cast<char *>(&value), sizeof(T));
    if (!is)
        fatal("checkpoint truncated while reading %zu bytes",
              sizeof(T));
    return value;
}

/**
 * Bytes left between the stream's read position and its end, or -1
 * when the stream is not seekable. Used to reject corrupt length
 * prefixes before they turn into multi-gigabyte allocations.
 */
std::int64_t remainingBytes(std::istream &is);

/**
 * Validate a length prefix claiming @p count elements of
 * @p elem_size bytes against the bytes actually left in @p is;
 * fatal with a clean corruption message on an absurd value.
 */
void checkLengthPrefix(std::istream &is, std::uint64_t count,
                       std::size_t elem_size, const char *what);

/** Write a vector of trivially-copyable values (u64 length prefix). */
template <typename T>
void
writeVector(std::ostream &os, const std::vector<T> &values)
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "writeVector requires trivially copyable elements");
    writePod<std::uint64_t>(os, values.size());
    os.write(reinterpret_cast<const char *>(values.data()),
             static_cast<std::streamsize>(values.size() * sizeof(T)));
}

/** Read a vector written by writeVector. */
template <typename T>
std::vector<T>
readVector(std::istream &is)
{
    const auto count = readPod<std::uint64_t>(is);
    checkLengthPrefix(is, count, sizeof(T), "vector");
    std::vector<T> values(count);
    is.read(reinterpret_cast<char *>(values.data()),
            static_cast<std::streamsize>(count * sizeof(T)));
    if (!is)
        fatal("checkpoint truncated while reading vector of %llu",
              static_cast<unsigned long long>(count));
    return values;
}

/** Write a length-prefixed string. */
void writeString(std::ostream &os, const std::string &s);

/** Read a length-prefixed string. */
std::string readString(std::istream &is);

/** Write a complete Rng snapshot (xoshiro words + gaussian spare). */
void writeRngState(std::ostream &os, const RngState &state);

/** Read an Rng snapshot written by writeRngState. */
RngState readRngState(std::istream &is);

/** Write a 4-byte magic + u32 version header. */
void writeHeader(std::ostream &os, std::uint32_t magic,
                 std::uint32_t version);

/**
 * Read and validate a header; fatal on magic mismatch or on a
 * version newer than @p max_version.
 * @return The file's version.
 */
std::uint32_t readHeader(std::istream &is, std::uint32_t magic,
                         std::uint32_t max_version);

} // namespace marlin

#endif // MARLIN_BASE_SERIALIZE_HH
