/**
 * @file
 * Unit tests for marlin/env: world physics invariants, scenario
 * observation layouts (checked against the paper's dimensions),
 * rewards, and the environment wrapper.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "marlin/env/cooperative_navigation.hh"
#include "marlin/env/environment.hh"
#include "marlin/env/predator_prey.hh"

namespace marlin::env
{
namespace
{

TEST(Vec2, BasicOps)
{
    Vec2 a{3, 4};
    EXPECT_NEAR(a.norm(), 5.0, 1e-6);
    Vec2 u = a.normalized();
    EXPECT_NEAR(u.norm(), 1.0, 1e-6);
    EXPECT_NEAR(distance({0, 0}, {3, 4}), 5.0, 1e-6);
    Vec2 zero{};
    EXPECT_EQ(zero.normalized(), (Vec2{0, 0}));
}

TEST(Entity, DiscreteActionDirections)
{
    EXPECT_EQ(discreteActionDirection(0), (Vec2{0, 0}));
    EXPECT_EQ(discreteActionDirection(1), (Vec2{1, 0}));
    EXPECT_EQ(discreteActionDirection(2), (Vec2{-1, 0}));
    EXPECT_EQ(discreteActionDirection(3), (Vec2{0, 1}));
    EXPECT_EQ(discreteActionDirection(4), (Vec2{0, -1}));
}

TEST(World, FreeAgentDeceleratesUnderDamping)
{
    World w;
    Agent a;
    a.movable = true;
    a.collide = false;
    a.vel = {1, 0};
    w.agents.push_back(a);
    const Real v0 = w.agents[0].vel.norm();
    w.step();
    const Real v1 = w.agents[0].vel.norm();
    EXPECT_LT(v1, v0);
    EXPECT_NEAR(v1, v0 * (1 - w.config().damping), 1e-5);
}

TEST(World, ActionForceAccelerates)
{
    World w;
    Agent a;
    a.movable = true;
    a.collide = false;
    a.actionForce = {1, 0};
    w.agents.push_back(a);
    w.step();
    EXPECT_GT(w.agents[0].vel.x, Real(0));
    EXPECT_EQ(w.agents[0].vel.y, Real(0));
    EXPECT_GT(w.agents[0].pos.x, Real(0));
}

TEST(World, MaxSpeedCaps)
{
    World w;
    Agent a;
    a.movable = true;
    a.collide = false;
    a.maxSpeed = Real(0.5);
    a.actionForce = {100, 0};
    w.agents.push_back(a);
    for (int i = 0; i < 10; ++i)
        w.step();
    EXPECT_LE(w.agents[0].vel.norm(), Real(0.5) + Real(1e-5));
}

TEST(World, ContactForceRepelsOverlappingAgents)
{
    World w;
    Agent a, b;
    a.movable = b.movable = true;
    a.collide = b.collide = true;
    a.size = b.size = Real(0.1);
    a.pos = {0, 0};
    b.pos = {0.05, 0}; // Deep overlap.
    w.agents = {a, b};
    w.step();
    // They must be pushed apart along x.
    EXPECT_LT(w.agents[0].vel.x, Real(0));
    EXPECT_GT(w.agents[1].vel.x, Real(0));
    // Newton's third law: equal magnitudes (same mass).
    EXPECT_NEAR(w.agents[0].vel.x, -w.agents[1].vel.x, 1e-4);
}

TEST(World, ContactForceFiniteForDeepOverlap)
{
    World w;
    Agent a, b;
    a.collide = b.collide = true;
    a.size = b.size = Real(0.5);
    a.pos = {0, 0};
    b.pos = {0, 0}; // Exact coincidence.
    const Vec2 f = w.contactForceOn(a, b);
    EXPECT_TRUE(std::isfinite(f.x));
    EXPECT_TRUE(std::isfinite(f.y));
}

TEST(World, DistantEntitiesExertNegligibleForce)
{
    World w;
    Agent a, b;
    a.collide = b.collide = true;
    a.size = b.size = Real(0.05);
    a.pos = {0, 0};
    b.pos = {1, 0};
    const Vec2 f = w.contactForceOn(a, b);
    EXPECT_LT(std::abs(f.x), 1e-6);
}

TEST(World, IsCollisionRespectsRadii)
{
    Agent a, b;
    a.collide = b.collide = true;
    a.size = Real(0.1);
    b.size = Real(0.1);
    a.pos = {0, 0};
    b.pos = {0.15, 0};
    EXPECT_TRUE(World::isCollision(a, b));
    b.pos = {0.25, 0};
    EXPECT_FALSE(World::isCollision(a, b));
    b.collide = false;
    b.pos = {0, 0};
    EXPECT_FALSE(World::isCollision(a, b));
}

TEST(World, ImmovableLandmarkStaysPut)
{
    World w;
    Agent a;
    a.movable = true;
    a.collide = true;
    a.size = Real(0.1);
    a.pos = {0.05, 0};
    w.agents.push_back(a);
    Entity lm;
    lm.collide = true;
    lm.size = Real(0.2);
    lm.pos = {0, 0};
    w.landmarks.push_back(lm);
    w.step();
    EXPECT_EQ(w.landmarks[0].pos, (Vec2{0, 0}));
    EXPECT_GT(w.agents[0].vel.x, Real(0)); // Pushed away.
}

// --- Paper observation-dimension anchors -------------------------

struct PpDims
{
    std::size_t predators;
    std::size_t predatorObs;
    std::size_t preyObs;
};

class PredatorPreyDims : public ::testing::TestWithParam<PpDims>
{
};

TEST_P(PredatorPreyDims, MatchesPaperObservationSpace)
{
    const auto param = GetParam();
    PredatorPreyConfig cfg;
    cfg.numPredators = param.predators;
    PredatorPreyScenario scenario(cfg);
    EXPECT_EQ(scenario.observationDim(0), param.predatorObs);
    EXPECT_EQ(scenario.observationDim(param.predators),
              param.preyObs);

    World w;
    scenario.makeWorld(w);
    Rng rng(1);
    scenario.resetWorld(w, rng);
    EXPECT_EQ(scenario.observation(w, 0).size(), param.predatorObs);
    EXPECT_EQ(scenario.observation(w, param.predators).size(),
              param.preyObs);
}

// The paper (Section II-B): 3 predators -> Box(16)/Box(14);
// 24 predators -> Box(98)/Box(96).
INSTANTIATE_TEST_SUITE_P(PaperAnchors, PredatorPreyDims,
                         ::testing::Values(PpDims{3, 16, 14},
                                           PpDims{24, 98, 96}));

class CooperativeNavDims : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(CooperativeNavDims, ObservationIsSixN)
{
    const std::size_t n = GetParam();
    CooperativeNavigationConfig cfg;
    cfg.numAgents = n;
    CooperativeNavigationScenario scenario(cfg);
    // Paper: Box(18) at 3 agents ... Box(144) at 24 -> 6N.
    EXPECT_EQ(scenario.observationDim(0), 6 * n);

    World w;
    scenario.makeWorld(w);
    Rng rng(2);
    scenario.resetWorld(w, rng);
    EXPECT_EQ(scenario.observation(w, 0).size(), 6 * n);
}

INSTANTIATE_TEST_SUITE_P(PaperAnchors, CooperativeNavDims,
                         ::testing::Values(3, 6, 12, 24));

TEST(PredatorPrey, RosterDerivation)
{
    PredatorPreyConfig cfg;
    cfg.numPredators = 24;
    PredatorPreyScenario s(cfg);
    EXPECT_EQ(s.numPrey(), 8u);
    EXPECT_EQ(s.numLandmarks(), 8u);

    PredatorPreyConfig small;
    small.numPredators = 3;
    PredatorPreyScenario s3(small);
    EXPECT_EQ(s3.numPrey(), 1u);
    EXPECT_EQ(s3.numLandmarks(), 2u);
}

TEST(PredatorPrey, PredatorRewardedForTag)
{
    PredatorPreyScenario scenario{PredatorPreyConfig{}};
    World w;
    scenario.makeWorld(w);
    Rng rng(3);
    scenario.resetWorld(w, rng);

    // Move prey far, reward should be shaping-only (negative).
    w.agents[3].pos = {10, 10};
    w.agents[0].pos = {0, 0};
    const Real far = scenario.reward(w, 0);
    EXPECT_LT(far, Real(0));

    // Collide predator 0 with the prey: large positive reward.
    w.agents[3].pos = {0.01f, 0};
    const Real tag = scenario.reward(w, 0);
    EXPECT_GT(tag, Real(5));
    EXPECT_GT(tag, far);
}

TEST(PredatorPrey, PreyPenalizedWhenCaught)
{
    PredatorPreyScenario scenario{PredatorPreyConfig{}};
    World w;
    scenario.makeWorld(w);
    Rng rng(4);
    scenario.resetWorld(w, rng);
    for (auto &a : w.agents)
        a.pos = {5, 5}; // All predators on the prey, out of bounds.
    w.agents[3].pos = {5, 5};
    const Real r = scenario.reward(w, 3);
    EXPECT_LT(r, Real(-5));
}

TEST(PredatorPrey, ScriptedPreyFleesNearestPredator)
{
    PredatorPreyScenario scenario{PredatorPreyConfig{}};
    World w;
    scenario.makeWorld(w);
    Rng rng(5);
    scenario.resetWorld(w, rng);
    w.agents[0].pos = {-0.2f, 0};
    w.agents[1].pos = {-0.5f, 0.5f};
    w.agents[2].pos = {-0.5f, -0.5f};
    w.agents[3].pos = {0, 0};
    // Nearest predator is to the left; flee right (action 1).
    // Prey policy has a 10% random component: take the mode.
    int votes[5] = {};
    for (int i = 0; i < 200; ++i)
        ++votes[scenario.scriptedAction(w, 3, rng)];
    int best = 0;
    for (int a = 1; a < 5; ++a)
        if (votes[a] > votes[best])
            best = a;
    EXPECT_EQ(best, 1);
}

TEST(CooperativeNavigation, SharedRewardImprovesWithCoverage)
{
    CooperativeNavigationConfig cfg;
    cfg.numAgents = 3;
    CooperativeNavigationScenario scenario(cfg);
    World w;
    scenario.makeWorld(w);
    Rng rng(6);
    scenario.resetWorld(w, rng);

    for (auto &a : w.agents)
        a.pos = {5, 5};
    const Real bad = scenario.reward(w, 0);

    for (std::size_t i = 0; i < 3; ++i)
        w.agents[i].pos = w.landmarks[i].pos;
    const Real good = scenario.reward(w, 0);
    EXPECT_GT(good, bad);
    EXPECT_NEAR(good, 0.0, 1e-4); // Perfect coverage, no collisions.
}

TEST(CooperativeNavigation, CollisionPenaltyApplied)
{
    CooperativeNavigationConfig cfg;
    cfg.numAgents = 2;
    CooperativeNavigationScenario scenario(cfg);
    World w;
    scenario.makeWorld(w);
    Rng rng(7);
    scenario.resetWorld(w, rng);
    w.agents[0].pos = {0, 0};
    w.agents[1].pos = {2, 2};
    const Real apart = scenario.reward(w, 0);
    w.agents[1].pos = {0.01f, 0}; // Overlapping.
    const Real touching = scenario.reward(w, 0);
    // Same coverage geometry change aside, the collision penalty
    // must appear; compare against the recomputed coverage term.
    EXPECT_LT(touching, apart + Real(10)); // Sanity.
    // Direct check: both agents collide -> each pays the penalty.
    const Real r0 = scenario.reward(w, 0);
    const Real r1 = scenario.reward(w, 1);
    EXPECT_NEAR(r0, r1, 1e-4); // Symmetric shared + equal penalty.
}

TEST(Environment, ResetAndStepShapes)
{
    auto environment = makePredatorPreyEnv(3, 11);
    EXPECT_EQ(environment->numAgents(), 3u);
    EXPECT_EQ(environment->actionDim(), 5u);
    auto obs = environment->reset();
    ASSERT_EQ(obs.size(), 3u);
    EXPECT_EQ(obs[0].size(), 16u);

    auto step = environment->step({1, 2, 3});
    EXPECT_EQ(step.observations.size(), 3u);
    EXPECT_EQ(step.rewards.size(), 3u);
    EXPECT_EQ(step.dones.size(), 3u);
    for (Real r : step.rewards)
        EXPECT_TRUE(std::isfinite(r));
}

TEST(Environment, ScriptedPreyMovesWithoutTrainerInput)
{
    auto environment = makePredatorPreyEnv(3, 13);
    environment->reset();
    const Vec2 prey_before = environment->world().agents[3].pos;
    for (int i = 0; i < 5; ++i)
        environment->step({0, 0, 0});
    const Vec2 prey_after = environment->world().agents[3].pos;
    EXPECT_NE(prey_before, prey_after);
}

TEST(Environment, DeterministicUnderSeed)
{
    auto a = makeCooperativeNavigationEnv(3, 99);
    auto b = makeCooperativeNavigationEnv(3, 99);
    auto oa = a->reset();
    auto ob = b->reset();
    ASSERT_EQ(oa.size(), ob.size());
    for (std::size_t i = 0; i < oa.size(); ++i)
        EXPECT_EQ(oa[i], ob[i]);
    auto sa = a->step({1, 1, 1});
    auto sb = b->step({1, 1, 1});
    EXPECT_EQ(sa.rewards, sb.rewards);
}

TEST(Environment, ObservationsStayFiniteOverLongRollout)
{
    auto environment = makePredatorPreyEnv(6, 17);
    auto obs = environment->reset();
    Rng rng(18);
    for (int t = 0; t < 500; ++t) {
        std::vector<int> actions(environment->numAgents());
        for (auto &a : actions)
            a = static_cast<int>(rng.randint(5));
        auto step = environment->step(actions);
        for (const auto &o : step.observations)
            for (Real v : o)
                ASSERT_TRUE(std::isfinite(v)) << "step " << t;
        obs = step.observations;
    }
}

} // namespace
} // namespace marlin::env
