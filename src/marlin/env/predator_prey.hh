/**
 * @file
 * Predator-Prey (competitive) scenario, modeled on MPE simple_tag.
 *
 * N slow predators are trained to tag faster, environment-controlled
 * prey; immovable landmarks act as obstacles. Observation layout
 * reproduces the paper's dimensionalities:
 *   3 predators, 1 prey, 2 landmarks -> Box(16) / Box(14)
 *   24 predators, 8 prey, 8 landmarks -> Box(98) / Box(96)
 */

#ifndef MARLIN_ENV_PREDATOR_PREY_HH
#define MARLIN_ENV_PREDATOR_PREY_HH

#include "marlin/env/scenario.hh"

namespace marlin::env
{

/** Roster and shaping parameters for PredatorPreyScenario. */
struct PredatorPreyConfig
{
    /** Trained predators (the paper's "number of agents"). */
    std::size_t numPredators = 3;
    /** Environment-controlled prey; 0 = derive as max(1, N/3). */
    std::size_t numPrey = 0;
    /** Obstacle landmarks; 0 = derive as max(2, N/3). */
    std::size_t numLandmarks = 0;
    /** Reward per predator-prey collision. */
    Real tagReward = Real(10);
    /** Distance-shaping coefficient for predators. */
    Real shapingCoeff = Real(0.1);
};

/** Competitive tag task with scripted fleeing prey. */
class PredatorPreyScenario : public Scenario
{
  public:
    explicit PredatorPreyScenario(PredatorPreyConfig config = {});

    std::string name() const override { return "predator_prey"; }

    void makeWorld(World &world) override;
    void resetWorld(World &world, Rng &rng) override;
    std::size_t learnableAgents(const World &world) const override;
    void observationInto(const World &world, std::size_t i,
                         Real *out) const override;
    std::size_t observationDim(std::size_t i) const override;
    Real reward(const World &world, std::size_t i) const override;
    int scriptedAction(const World &world, std::size_t i,
                       Rng &rng) const override;

    const PredatorPreyConfig &config() const { return _config; }
    std::size_t numPrey() const { return _config.numPrey; }
    std::size_t numLandmarks() const { return _config.numLandmarks; }

  private:
    PredatorPreyConfig _config;
};

} // namespace marlin::env

#endif // MARLIN_ENV_PREDATOR_PREY_HH
