/**
 * @file
 * Ablation: the hardware prefetcher's role. The paper's whole
 * optimization works by "steering the hardware prefetcher"
 * (Section IV-A); with the prefetcher disabled in the memory model,
 * locality-aware sampling should lose most of its simulated miss
 * advantage — isolating how much of the gain is prefetch vs plain
 * line reuse.
 */

#include "common.hh"

namespace
{

using namespace marlin;
using namespace marlin::bench;

std::uint64_t
missesFor(replay::Sampler &sampler,
          const replay::MultiAgentBuffer &buffers, bool prefetcher_on)
{
    Rng rng(9);
    std::vector<replay::AgentBatch> batches;
    replay::AccessTrace trace;
    for (int u = 0; u < 2; ++u) {
        for (std::size_t t = 0; t < buffers.numAgents(); ++t) {
            auto plan = sampler.plan(buffers.size(), 1024, rng);
            replay::gatherAllAgents(buffers, plan, batches, &trace);
        }
    }
    auto preset =
        memsim::makePlatform(memsim::PlatformId::Threadripper3975WX);
    preset.hierarchy.prefetcher.enabled = prefetcher_on;
    memsim::CacheHierarchy hierarchy(preset.hierarchy);
    return memsim::replayTrace(hierarchy, trace, preset.frequencyHz)
        .stats.l1.misses;
}

} // namespace

int
main(int argc, char **argv)
{
    initThreads(argc, argv);
    initIsa(argc, argv);
    initLogLevel(argc, argv);
    ObsSession obs(argc, argv, "bench_ablation_prefetcher");
    banner("Ablation: prefetcher on/off under each sampler");
    const std::size_t agents = 6;
    auto shapes = taskShapes(Task::PredatorPrey, agents);
    const BufferIndex capacity =
        scaledCapacity(shapes, 256ull << 20);
    replay::MultiAgentBuffer buffers(shapes, capacity);
    Rng fill_rng(1);
    fillSynthetic(buffers, capacity, fill_rng);

    std::printf("predator-prey, %zu agents; L1 misses per 2 "
                "updates\n\n",
                agents);
    std::printf("%-20s %14s %14s %12s\n", "sampler", "pf on",
                "pf off", "pf saves");

    replay::UniformSampler uniform;
    replay::LocalityAwareSampler loc16({16, 64});
    replay::LocalityAwareSampler loc64({64, 16});
    struct Row
    {
        const char *name;
        replay::Sampler *sampler;
    } rows[] = {{"uniform", &uniform},
                {"locality n16 r64", &loc16},
                {"locality n64 r16", &loc64}};

    for (const Row &row : rows) {
        const auto on = missesFor(*row.sampler, buffers, true);
        const auto off = missesFor(*row.sampler, buffers, false);
        std::printf("%-20s %14llu %14llu %11.1f%%\n", row.name,
                    static_cast<unsigned long long>(on),
                    static_cast<unsigned long long>(off),
                    pctReduction(static_cast<double>(off),
                                 static_cast<double>(on)));
    }

    std::printf("\nexpectation: the prefetcher barely helps the "
                "random baseline but removes\nmost misses from the "
                "sequential neighbor runs — the mechanism the "
                "paper's\noptimization is built on.\n");
    return 0;
}
