#include "marlin/nn/grad_check.hh"

#include <cmath>

#include "marlin/nn/loss.hh"

namespace marlin::nn
{

namespace
{

double
lossAt(Mlp &net, const Matrix &x, const Matrix &target)
{
    Matrix pred = net.forward(x);
    Matrix grad_unused;
    return mseLoss(pred, target, grad_unused);
}

void
record(GradCheckResult &res, Real analytic, Real numeric)
{
    const Real abs_err = std::abs(analytic - numeric);
    const Real denom = std::max({std::abs(analytic),
                                 std::abs(numeric), Real(1e-4)});
    res.maxAbsError = std::max(res.maxAbsError, abs_err);
    res.maxRelError = std::max(res.maxRelError, abs_err / denom);
    ++res.checked;
}

} // namespace

GradCheckResult
checkMlpGradients(Mlp &net, const Matrix &x, const Matrix &target,
                  Real epsilon, std::size_t stride)
{
    GradCheckResult res;
    // Analytic pass.
    net.zeroGrad();
    Matrix pred = net.forward(x);
    Matrix dloss;
    mseLoss(pred, target, dloss);
    net.backward(dloss);

    for (Param *p : net.params()) {
        for (std::size_t j = 0; j < p->value.size(); j += stride) {
            Real &w = p->value.data()[j];
            const Real saved = w;
            w = saved + epsilon;
            const double lp = lossAt(net, x, target);
            w = saved - epsilon;
            const double lm = lossAt(net, x, target);
            w = saved;
            const Real numeric = static_cast<Real>(
                (lp - lm) / (2.0 * epsilon));
            record(res, p->grad.data()[j], numeric);
        }
    }
    return res;
}

GradCheckResult
checkInputGradients(Mlp &net, const Matrix &x, const Matrix &target,
                    Real epsilon, std::size_t stride)
{
    GradCheckResult res;
    net.zeroGrad();
    Matrix pred = net.forward(x);
    Matrix dloss;
    mseLoss(pred, target, dloss);
    Matrix dx;
    net.backward(dloss, &dx);

    Matrix probe = x;
    for (std::size_t j = 0; j < probe.size(); j += stride) {
        Real &v = probe.data()[j];
        const Real saved = v;
        v = saved + epsilon;
        const double lp = lossAt(net, probe, target);
        v = saved - epsilon;
        const double lm = lossAt(net, probe, target);
        v = saved;
        const Real numeric = static_cast<Real>(
            (lp - lm) / (2.0 * epsilon));
        record(res, dx.data()[j], numeric);
    }
    return res;
}

} // namespace marlin::nn
