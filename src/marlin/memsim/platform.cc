#include "marlin/memsim/platform.hh"

#include "marlin/base/logging.hh"

namespace marlin::memsim
{

PlatformPreset
makePlatform(PlatformId id)
{
    PlatformPreset p;
    switch (id) {
      case PlatformId::Threadripper3975WX:
        // Zen2: 32 KiB 8-way L1d, 512 KiB 8-way L2 per core, large
        // shared L3 (Table II lists 128 MiB; one core sees its CCX
        // slice but the single-threaded sampler can spill widely, so
        // model a 16 MiB effective slice), 3072-entry dTLB.
        p.name = "threadripper_3975wx";
        p.hierarchy.l1 = {32 * 1024, 64, 8};
        p.hierarchy.l2 = {512 * 1024, 64, 8};
        p.hierarchy.l3 = {16 * 1024 * 1024, 64, 16};
        p.hierarchy.tlb = {3072, 12, 4096};
        p.hierarchy.l1Latency = 4;
        p.hierarchy.l2Latency = 12;
        p.hierarchy.l3Latency = 38;
        p.hierarchy.memLatency = 210;
        p.frequencyHz = 3.5e9;
        break;
      case PlatformId::CoreI7_9700K:
        // Coffee Lake: 32 KiB 8-way L1d, 256 KiB 4-way L2,
        // 12 MiB 16-way shared L3, 1536-entry L2 dTLB.
        p.name = "core_i7_9700k";
        p.hierarchy.l1 = {32 * 1024, 64, 8};
        p.hierarchy.l2 = {256 * 1024, 64, 4};
        p.hierarchy.l3 = {12 * 1024 * 1024, 64, 16};
        p.hierarchy.tlb = {1536, 12, 4096};
        p.hierarchy.l1Latency = 4;
        p.hierarchy.l2Latency = 14;
        p.hierarchy.l3Latency = 42;
        p.hierarchy.memLatency = 190;
        p.frequencyHz = 3.6e9;
        break;
    }
    return p;
}

PlatformId
platformFromString(const std::string &name)
{
    if (name == "threadripper")
        return PlatformId::Threadripper3975WX;
    if (name == "i7-9700k")
        return PlatformId::CoreI7_9700K;
    fatal("unknown platform '%s'", name.c_str());
}

} // namespace marlin::memsim
