/**
 * @file
 * google-benchmark microbenchmarks for MARLin's hot kernels: the
 * GEMM variants at the paper's network shapes, the per-sampler
 * index-plan generation, single-buffer gathers under each index
 * pattern, and the sum-tree operations. These feed performance
 * regressions that the figure-level benches are too coarse to see.
 */

#include <benchmark/benchmark.h>

#include "common.hh"
#include "marlin/numeric/gemm.hh"
#include "marlin/numeric/ops.hh"
#include "marlin/replay/gather.hh"
#include "marlin/replay/locality_sampler.hh"
#include "marlin/replay/prioritized_sampler.hh"
#include "marlin/replay/sum_tree.hh"
#include "marlin/replay/uniform_sampler.hh"

namespace
{

using namespace marlin;
using numeric::Matrix;
using numeric::kernels::Isa;

/**
 * Pin the kernel ISA for one benchmark run, skipping cleanly when
 * the host can't run it (the scalar fallback is always available).
 * Returns false when the bench body should bail out.
 */
bool
pinIsa(benchmark::State &state, Isa isa)
{
    if (!numeric::kernels::isaAvailable(isa)) {
        state.SkipWithError("isa not available on this host");
        return false;
    }
    numeric::kernels::setIsa(isa);
    return true;
}

// --- GEMM at the paper's actor/critic shapes -----------------------
// Each GEMM/elementwise bench has a scalar and an avx2 capture so a
// single run reports the vector speedup side by side.

void
BM_GemmCriticForward(benchmark::State &state, Isa isa)
{
    if (!pinIsa(state, isa))
        return;
    // batch x jointDim times jointDim x 64 — the centralized
    // critic's first layer at the given agent count (PP dims).
    const std::size_t agents = static_cast<std::size_t>(state.range(0));
    const std::size_t joint = agents * (4 * agents + 10);
    Rng rng(1);
    Matrix a(1024, joint), b(joint, 64), c;
    numeric::fillUniform(a, rng, -1, 1);
    numeric::fillUniform(b, rng, -1, 1);
    for (auto _ : state) {
        numeric::gemm(a, b, c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 1024 * joint * 64);
}
BENCHMARK_CAPTURE(BM_GemmCriticForward, scalar, Isa::Scalar)
    ->Arg(3)->Arg(6)->Arg(12);
BENCHMARK_CAPTURE(BM_GemmCriticForward, avx2, Isa::Avx2)
    ->Arg(3)->Arg(6)->Arg(12);

void
BM_GemmTN(benchmark::State &state, Isa isa)
{
    if (!pinIsa(state, isa))
        return;
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    Rng rng(2);
    Matrix a(1024, n), b(1024, 64), c;
    numeric::fillUniform(a, rng, -1, 1);
    numeric::fillUniform(b, rng, -1, 1);
    for (auto _ : state) {
        numeric::gemmTN(a, b, c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 1024 * n * 64);
}
BENCHMARK_CAPTURE(BM_GemmTN, scalar, Isa::Scalar)->Arg(64)->Arg(256);
BENCHMARK_CAPTURE(BM_GemmTN, avx2, Isa::Avx2)->Arg(64)->Arg(256);

void
BM_GemmNT(benchmark::State &state, Isa isa)
{
    if (!pinIsa(state, isa))
        return;
    // batch x out times (in x out)^T — the critic's input-gradient
    // shape for the first hidden layer.
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    Rng rng(9);
    Matrix a(1024, 64), b(n, 64), c;
    numeric::fillUniform(a, rng, -1, 1);
    numeric::fillUniform(b, rng, -1, 1);
    for (auto _ : state) {
        numeric::gemmNT(a, b, c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * 1024 * 64 * n);
}
BENCHMARK_CAPTURE(BM_GemmNT, scalar, Isa::Scalar)->Arg(64)->Arg(512);
BENCHMARK_CAPTURE(BM_GemmNT, avx2, Isa::Avx2)->Arg(64)->Arg(512);

// --- Elementwise / optimizer kernels --------------------------------

void
BM_ReluForward(benchmark::State &state, Isa isa)
{
    if (!pinIsa(state, isa))
        return;
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    Rng rng(10);
    Matrix x(1, n), y(1, n);
    numeric::fillUniform(x, rng, -1, 1);
    const auto &kt = numeric::kernels::active();
    for (auto _ : state) {
        kt.reluForward(x.data(), y.data(), n);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK_CAPTURE(BM_ReluForward, scalar, Isa::Scalar)->Arg(1 << 16);
BENCHMARK_CAPTURE(BM_ReluForward, avx2, Isa::Avx2)->Arg(1 << 16);

void
BM_Axpy(benchmark::State &state, Isa isa)
{
    if (!pinIsa(state, isa))
        return;
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    Rng rng(11);
    Matrix x(1, n), y(1, n);
    numeric::fillUniform(x, rng, -1, 1);
    numeric::fillUniform(y, rng, -1, 1);
    const auto &kt = numeric::kernels::active();
    for (auto _ : state) {
        kt.axpy(Real(0.5), x.data(), y.data(), n);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK_CAPTURE(BM_Axpy, scalar, Isa::Scalar)->Arg(1 << 16);
BENCHMARK_CAPTURE(BM_Axpy, avx2, Isa::Avx2)->Arg(1 << 16);

void
BM_AdamStep(benchmark::State &state, Isa isa)
{
    if (!pinIsa(state, isa))
        return;
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    Rng rng(12);
    Matrix w(1, n), g(1, n), m(1, n), v(1, n);
    numeric::fillUniform(w, rng, -1, 1);
    numeric::fillUniform(g, rng, -1, 1);
    numeric::kernels::AdamParams params{
        Real(0.9), Real(0.999), Real(0.1), Real(0.001),
        Real(0.01), Real(1e-8)};
    const auto &kt = numeric::kernels::active();
    for (auto _ : state) {
        kt.adamStep(params, g.data(), w.data(), m.data(), v.data(),
                    n);
        benchmark::DoNotOptimize(w.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK_CAPTURE(BM_AdamStep, scalar, Isa::Scalar)->Arg(1 << 16);
BENCHMARK_CAPTURE(BM_AdamStep, avx2, Isa::Avx2)->Arg(1 << 16);

void
BM_SoftUpdate(benchmark::State &state, Isa isa)
{
    if (!pinIsa(state, isa))
        return;
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    Rng rng(13);
    Matrix s(1, n), d(1, n);
    numeric::fillUniform(s, rng, -1, 1);
    numeric::fillUniform(d, rng, -1, 1);
    const auto &kt = numeric::kernels::active();
    for (auto _ : state) {
        kt.softUpdate(Real(0.01), s.data(), d.data(), n);
        benchmark::DoNotOptimize(d.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK_CAPTURE(BM_SoftUpdate, scalar, Isa::Scalar)->Arg(1 << 16);
BENCHMARK_CAPTURE(BM_SoftUpdate, avx2, Isa::Avx2)->Arg(1 << 16);

// --- Index-plan generation ------------------------------------------

void
BM_PlanUniform(benchmark::State &state)
{
    replay::UniformSampler sampler;
    Rng rng(3);
    for (auto _ : state) {
        auto plan = sampler.plan(1 << 20, 1024, rng);
        benchmark::DoNotOptimize(plan.indices.data());
    }
}
BENCHMARK(BM_PlanUniform);

void
BM_PlanLocality(benchmark::State &state)
{
    replay::LocalityAwareSampler sampler(
        {static_cast<std::size_t>(state.range(0)), 0});
    Rng rng(4);
    for (auto _ : state) {
        auto plan = sampler.plan(1 << 20, 1024, rng);
        benchmark::DoNotOptimize(plan.indices.data());
    }
}
BENCHMARK(BM_PlanLocality)->Arg(16)->Arg(64);

void
BM_PlanPer(benchmark::State &state)
{
    replay::PerConfig cfg;
    cfg.capacity = 1 << 16;
    replay::PrioritizedSampler sampler(cfg);
    for (BufferIndex i = 0; i < cfg.capacity; ++i)
        sampler.onAdd(i);
    Rng rng(5);
    for (auto _ : state) {
        auto plan = sampler.plan(cfg.capacity, 1024, rng);
        benchmark::DoNotOptimize(plan.indices.data());
    }
}
BENCHMARK(BM_PlanPer);

// --- Single-buffer gather under each pattern ------------------------

void
gatherBench(benchmark::State &state, bool sequential)
{
    const std::size_t obs_dim = static_cast<std::size_t>(state.range(0));
    replay::ReplayBuffer buffer({obs_dim, 5}, 1 << 16);
    std::vector<Real> obs(obs_dim), next(obs_dim), act(5, 0);
    for (int t = 0; t < (1 << 16); ++t)
        buffer.add(obs.data(), act.data(), 0, next.data(), false);

    replay::UniformSampler uniform;
    replay::LocalityAwareSampler locality({64, 16});
    replay::Sampler &sampler =
        sequential ? static_cast<replay::Sampler &>(locality)
                   : static_cast<replay::Sampler &>(uniform);
    Rng rng(6);
    replay::AgentBatch batch;
    for (auto _ : state) {
        auto plan = sampler.plan(buffer.size(), 1024, rng);
        replay::gatherAgentBatch(buffer, plan, batch);
        benchmark::DoNotOptimize(batch.obs.data());
    }
    state.SetBytesProcessed(state.iterations() * 1024 *
                            (2 * obs_dim + 5 + 2) * sizeof(Real));
}

void
BM_GatherRandom(benchmark::State &state)
{
    gatherBench(state, false);
}
BENCHMARK(BM_GatherRandom)->Arg(16)->Arg(98);

void
BM_GatherSequentialRuns(benchmark::State &state)
{
    gatherBench(state, true);
}
BENCHMARK(BM_GatherSequentialRuns)->Arg(16)->Arg(98);

// --- Sum tree --------------------------------------------------------

void
BM_SumTreeSet(benchmark::State &state)
{
    replay::SumTree tree(1 << 20);
    Rng rng(7);
    for (auto _ : state) {
        tree.set(rng.randint(1 << 20), rng.uniform());
    }
}
BENCHMARK(BM_SumTreeSet);

void
BM_SumTreeFind(benchmark::State &state)
{
    replay::SumTree tree(1 << 20);
    Rng rng(8);
    for (BufferIndex i = 0; i < (1 << 20); ++i)
        tree.set(i, rng.uniform() + 0.01);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tree.find(rng.uniform() * tree.total() * 0.999));
    }
}
BENCHMARK(BM_SumTreeFind);

} // namespace

// Hand-rolled BENCHMARK_MAIN so --threads is consumed before
// google-benchmark's flag parser (which rejects unknown flags).
// The kernel benches pin their own ISA per variant; --isa still
// selects the ISA for the plan/gather/sum-tree benches.
int
main(int argc, char **argv)
{
    marlin::bench::initThreads(argc, argv);
    marlin::bench::initIsa(argc, argv);
    marlin::bench::initLogLevel(argc, argv);
    marlin::bench::ObsSession obs(argc, argv, "bench_micro_kernels");
    marlin::bench::banner("micro_kernels");
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
