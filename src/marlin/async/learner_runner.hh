/**
 * @file
 * Learner thread of the async runtime: drains every actor's
 * transition ring into the replay buffer, runs trainer updates, and
 * publishes fresh actor weights back to the rollout threads.
 */

#ifndef MARLIN_ASYNC_LEARNER_RUNNER_HH
#define MARLIN_ASYNC_LEARNER_RUNNER_HH

#include <vector>

#include "marlin/async/policy_snapshot.hh"
#include "marlin/async/run_control.hh"
#include "marlin/core/maddpg.hh"
#include "marlin/obs/metrics.hh"
#include "marlin/obs/telemetry.hh"
#include "marlin/profile/timer.hh"
#include "marlin/replay/transition_ring.hh"

namespace marlin::async
{

/** Learner-side knobs, fixed for the run. */
struct LearnerConfig
{
    /** Updates between weight-snapshot publications. */
    std::size_t snapshotEvery = 1;
    /** Max records drained per ring per cycle, so a fast producer
     *  cannot starve the update cadence. */
    std::size_t drainChunk = 256;
};

/**
 * One learner thread over N actor rings. Per cycle: drain a bounded
 * chunk from each ring into the replay buffer (the PR-5 raw-pointer
 * path — allocation-free on warm buffers), run a trainer update when
 * enough insertions accumulated, publish weights, refresh ring
 * counters in the obs registry and the telemetry stream.
 *
 * Thread contract: run() is the thread body; result accessors are
 * read after it joins.
 */
class LearnerRunner
{
  public:
    LearnerRunner(core::CtdeTrainerBase &trainer,
                  replay::MultiAgentBuffer &buffers,
                  std::vector<replay::TransitionRing *> rings,
                  const replay::JointTransitionLayout &layout,
                  PolicySnapshot &snapshot, RunControl &control,
                  const core::TrainConfig &config,
                  LearnerConfig learner_config);

    /**
     * Stream one telemetry record per @p every_steps drained
     * transitions. Learner-thread only (the writer is single-
     * threaded); call before the thread starts.
     */
    void setTelemetry(obs::TelemetryWriter *writer,
                      std::size_t every_steps);

    /** Thread body: drain and update until all actors retire. */
    void run();

    // Read after join.
    StepCount drainedSteps() const { return drained; }
    StepCount updateCalls() const { return updates; }
    std::size_t nonFiniteUpdates() const { return nonFinite; }
    bool halted() const { return _halted; }
    const profile::PhaseTimer &timer() const { return _timer; }
    const core::UpdateStats &lastStats() const { return stats; }
    bool haveStats() const { return _haveStats; }

  private:
    /** Drain up to drainChunk records from each ring. @return count. */
    std::size_t drainRings();

    /** Push ring totals into the obs registry (delta counters). */
    void refreshMetrics();

    void maybeEmitTelemetry();

    core::CtdeTrainerBase &trainer;
    replay::MultiAgentBuffer &buffers;
    std::vector<replay::TransitionRing *> rings;
    const replay::JointTransitionLayout &layout;
    PolicySnapshot &snapshot;
    RunControl &control;
    core::TrainConfig config;
    LearnerConfig learnerConfig;

    obs::TelemetryWriter *telemetry = nullptr;
    std::size_t telemetryEvery = 1;
    StepCount telemetryNextAt = 0;
    std::array<std::uint64_t, profile::numPhases> telemetryLastNs{};

    StepCount drained = 0;
    StepCount insertionsSinceUpdate = 0;
    StepCount updates = 0;
    std::size_t nonFinite = 0;
    bool _halted = false;
    core::UpdateStats stats;
    bool _haveStats = false;
    profile::PhaseTimer _timer;

    // Obs registry handles, resolved once (registration locks).
    obs::Counter &pushedCounter;
    obs::Counter &droppedCounter;
    obs::Counter &gapCounter;
    obs::Gauge &depthGauge;
    // Last published totals, so counters receive deltas.
    std::uint64_t lastPushed = 0;
    std::uint64_t lastDropped = 0;
    std::uint64_t lastGaps = 0;
};

} // namespace marlin::async

#endif // MARLIN_ASYNC_LEARNER_RUNNER_HH
