#include "marlin/env/world.hh"

#include <cmath>

namespace marlin::env
{

bool
World::isCollision(const Entity &a, const Entity &b)
{
    if (!a.collide || !b.collide || &a == &b)
        return false;
    const Real min_dist = a.size + b.size;
    return (a.pos - b.pos).normSq() < min_dist * min_dist;
}

Vec2
World::contactForceOn(const Entity &a, const Entity &b) const
{
    if (!a.collide || !b.collide || &a == &b)
        return {};
    const Vec2 delta = a.pos - b.pos;
    const Real dist = delta.norm();
    const Real min_dist = a.size + b.size;
    // Softened interpenetration (MPE): smooth max(0, min_dist-dist).
    // Evaluated in double: the exponent reaches several hundred for
    // overlapping spawns, which overflows in single precision.
    const double k = static_cast<double>(_config.contactMargin);
    const double x = -(static_cast<double>(dist) -
                       static_cast<double>(min_dist)) / k;
    // log1p(exp(x)) == x + log1p(exp(-x)) for large x, avoiding
    // overflow for any penetration depth.
    const double softplus =
        x > 30.0 ? x + std::log1p(std::exp(-x))
                 : std::log1p(std::exp(x));
    const Real penetration = static_cast<Real>(softplus * k);
    const Vec2 dir = dist > Real(0) ? Vec2{delta.x / dist,
                                           delta.y / dist}
                                    : Vec2{1, 0};
    return dir * (_config.contactForce * penetration);
}

void
World::step()
{
    const std::size_t n = agents.size();
    forces.assign(n, Vec2{});

    // Action forces scaled by per-agent acceleration.
    for (std::size_t i = 0; i < n; ++i) {
        if (agents[i].movable)
            forces[i] = agents[i].actionForce * agents[i].accel;
    }

    // Pairwise agent-agent contact forces (symmetric).
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            const Vec2 f = contactForceOn(agents[i], agents[j]);
            if (agents[i].movable)
                forces[i] += f;
            if (agents[j].movable)
                forces[j] += f * Real(-1);
        }
    }

    // Agent-landmark contacts (landmarks are immovable obstacles).
    for (std::size_t i = 0; i < n; ++i) {
        if (!agents[i].movable)
            continue;
        for (const Entity &lm : landmarks)
            forces[i] += contactForceOn(agents[i], lm);
    }

    // Semi-implicit integration with damping and speed cap.
    for (std::size_t i = 0; i < n; ++i) {
        Agent &a = agents[i];
        if (!a.movable)
            continue;
        a.vel *= (Real(1) - _config.damping);
        a.vel += forces[i] * (_config.dt / a.mass);
        if (a.maxSpeed > Real(0)) {
            const Real speed = a.vel.norm();
            if (speed > a.maxSpeed)
                a.vel *= a.maxSpeed / speed;
        }
        a.pos += a.vel * _config.dt;
    }
}

} // namespace marlin::env
