#include "marlin/async/async_train_loop.hh"

#include <algorithm>
#include <string>

#include "marlin/async/actor_runner.hh"
#include "marlin/async/learner_runner.hh"
#include "marlin/base/logging.hh"
#include "marlin/base/worker_thread.hh"
#include "marlin/obs/metrics.hh"

namespace marlin::async
{

AsyncTrainLoop::AsyncTrainLoop(core::CtdeTrainerBase &trainer_in,
                               EnvFactory env_factory,
                               PolicyFactory policy_factory,
                               core::TrainConfig config_in,
                               AsyncConfig async_in)
    : trainer(trainer_in), envFactory(std::move(env_factory)),
      policyFactory(std::move(policy_factory)),
      config(std::move(config_in)), async(async_in),
      buffers(trainer_in.transitionShapes(), config.bufferCapacity),
      layout(replay::JointTransitionLayout::fromShapes(
          trainer_in.transitionShapes()))
{
    MARLIN_ASSERT(async.actors >= 1, "async loop needs >= 1 actor");
    MARLIN_ASSERT(async.lanesPerActor >= 1,
                  "async loop needs >= 1 lane per actor");
    if (config.backend != core::SamplingBackend::PerAgent)
    {
        fatal("the async runtime supports only the per-agent "
              "sampling backend (the interleaved store's reorg "
              "bookkeeping assumes the lockstep loop)");
    }
    if (config.healthPolicy == core::HealthGuardPolicy::Rollback)
    {
        fatal("HealthGuardPolicy::Rollback requires checkpointing, "
              "which only the lockstep TrainLoop supports; use the "
              "sync loop (--actors 1) or another policy");
    }
}

void
AsyncTrainLoop::setTelemetry(obs::TelemetryWriter *writer,
                             std::size_t every_steps)
{
    telemetry = writer;
    telemetryEvery = every_steps > 0 ? every_steps : 1;
}

AsyncTrainResult
AsyncTrainLoop::run(std::size_t episodes)
{
    AsyncTrainResult result;

    PolicySnapshot snapshot;
    RunControl control;
    control.episodeTarget = episodes;
    control.activeActors.store(async.actors,
                               std::memory_order_relaxed);
    obs::Registry::instance().gauge("async.actors").set(
        static_cast<double>(async.actors));

    // Actors must start from the learner's exact current weights,
    // not their clones' random init: publish before any thread runs.
    snapshot.publish(trainer);

    std::vector<std::unique_ptr<replay::TransitionRing>> rings;
    std::vector<std::unique_ptr<ActorRunner>> actors;
    rings.reserve(async.actors);
    actors.reserve(async.actors);
    for (std::size_t a = 0; a < async.actors; ++a)
    {
        rings.push_back(std::make_unique<replay::TransitionRing>(
            layout.stride, async.ringCapacity));

        std::vector<std::unique_ptr<env::Environment>> lanes;
        lanes.reserve(async.lanesPerActor);
        for (std::size_t l = 0; l < async.lanesPerActor; ++l)
        {
            // Distinct decorrelated seeds per lane; the sync loop's
            // stream (plain config.seed) is deliberately not among
            // them — async runs are a different experiment.
            lanes.push_back(envFactory(config.seed + 1 +
                                       a * async.lanesPerActor + l));
        }

        ActorConfig acfg;
        acfg.actorId = a;
        acfg.maxEpisodeLength = config.maxEpisodeLength;
        acfg.publishBatch = async.publishBatch;
        acfg.actionMode = config.actionMode;
        actors.push_back(std::make_unique<ActorRunner>(
            acfg, std::move(lanes),
            policyFactory(config.seed + 7919 * (a + 1)), *rings[a],
            layout, snapshot, control));
    }

    std::vector<replay::TransitionRing *> ringPtrs;
    ringPtrs.reserve(rings.size());
    for (auto &r : rings)
        ringPtrs.push_back(r.get());

    LearnerConfig lcfg;
    lcfg.snapshotEvery =
        async.snapshotEvery > 0 ? async.snapshotEvery : 1;
    LearnerRunner learner(trainer, buffers, ringPtrs, layout,
                          snapshot, control, config, lcfg);
    learner.setTelemetry(telemetry, telemetryEvery);

    {
        std::vector<base::WorkerThread> threads;
        threads.reserve(async.actors + 1);
        threads.emplace_back("marlin-learner",
                             [&learner] { learner.run(); });
        for (std::size_t a = 0; a < async.actors; ++a)
        {
            ActorRunner *runner = actors[a].get();
            threads.emplace_back("marlin-actor" + std::to_string(a),
                                 [runner] { runner->run(); });
        }
        // WorkerThread joins on destruction; leaving the scope is
        // the barrier.
    }

    for (const auto &actor : actors)
    {
        result.envSteps += actor->envSteps();
        result.weightRefreshes += actor->weightRefreshes();
        result.timer.merge(actor->timer());
    }
    result.timer.merge(learner.timer());
    result.drainedSteps = learner.drainedSteps();
    result.updateCalls = learner.updateCalls();
    result.nonFiniteUpdates = learner.nonFiniteUpdates();
    result.halted = learner.halted();
    for (const auto &ring : rings)
    {
        result.ringPushed += ring->pushedCount();
        result.ringDropped += ring->droppedCount();
        result.ringSeqGaps += ring->seqGapCount();
    }

    {
        const std::lock_guard<std::mutex> lock(control.rewardMutex);
        std::sort(control.episodeRewards.begin(),
                  control.episodeRewards.end(),
                  [](const auto &x, const auto &y) {
                      return x.first < y.first;
                  });
        result.episodeRewards.reserve(control.episodeRewards.size());
        for (const auto &[index, reward] : control.episodeRewards)
            result.episodeRewards.push_back(reward);
    }
    if (!result.episodeRewards.empty())
    {
        const std::size_t done = result.episodeRewards.size();
        const std::size_t tail = std::max<std::size_t>(1, done / 10);
        Real total = 0;
        for (std::size_t e = done - tail; e < done; ++e)
            total += result.episodeRewards[e];
        result.finalScore = total / static_cast<Real>(tail);
    }

    if (telemetry != nullptr)
    {
        telemetry->writeSummary({
            {"episodes",
             static_cast<double>(result.episodeRewards.size())},
            {"env_steps", static_cast<double>(result.envSteps)},
            {"drained_steps",
             static_cast<double>(result.drainedSteps)},
            {"update_calls",
             static_cast<double>(result.updateCalls)},
            {"final_score", static_cast<double>(result.finalScore)},
            {"nonfinite_updates",
             static_cast<double>(result.nonFiniteUpdates)},
            {"ring_pushed",
             static_cast<double>(result.ringPushed)},
            {"ring_dropped",
             static_cast<double>(result.ringDropped)},
            {"ring_seq_gaps",
             static_cast<double>(result.ringSeqGaps)},
            {"actors", static_cast<double>(async.actors)},
            {"halted", result.halted ? 1.0 : 0.0},
        });
    }

    return result;
}

} // namespace marlin::async
