/**
 * @file
 * Runtime CPU feature detection for the ISA-dispatched kernel layer.
 *
 * The binary is compiled for baseline x86-64; vector kernels live in
 * a separate translation unit built with -mavx2 -mfma and are only
 * entered after these cpuid checks pass, so the same executable runs
 * on any x86-64 machine and uses AVX2 where the hardware has it.
 */

#ifndef MARLIN_BASE_CPU_HH
#define MARLIN_BASE_CPU_HH

namespace marlin::base
{

/**
 * True when the running CPU supports both AVX2 and FMA (the vector
 * kernel TU requires the pair). Always false on non-x86 targets.
 * The result is computed once via cpuid and cached.
 */
bool cpuSupportsAvx2();

/**
 * Short human-readable description of the detected vector features
 * ("avx2+fma" or "baseline"), for log lines and bench headers.
 */
const char *cpuVectorFeatures();

} // namespace marlin::base

#endif // MARLIN_BASE_CPU_HH
