/**
 * @file
 * Sharded, tiered replay storage: the out-of-core backend behind
 * the ReplayStore interface (ROADMAP item 1's 100M+ transitions).
 *
 * Logical slots are striped across a power-of-two shard count by
 * low bits — shard = slot & (S-1), shard-local slot = slot >> log2 S
 * — so consecutive appends round-robin the shards (per-actor
 * sharding falls out when S == actor lanes) and the mapping is pure
 * arithmetic: samplers keep planning over [0, size()) and results
 * are bit-identical for ANY shard count (the PR-1 contract, applied
 * to shards).
 *
 * Each shard is a ring of interleaved joint records (stride and
 * field offsets exactly JointTransitionLayout::fromShapes, i.e. the
 * async TransitionRing record format — the drain path is a single
 * memcpy). The newest hotCapacity/S records per shard live in a RAM
 * ring (the hot tier); on eviction the displaced record is spilled
 * write-behind into the shard's MmapColdTier at its shard-local
 * slot, and gathers reaching past the hot window fault it back
 * from the mapped segment. With no cold directory configured the
 * store is all-hot and hotCapacity must equal capacity.
 */

#ifndef MARLIN_REPLAY_SHARDED_STORE_HH
#define MARLIN_REPLAY_SHARDED_STORE_HH

#include <memory>
#include <string>
#include <vector>

#include "marlin/replay/cold_tier.hh"
#include "marlin/replay/replay_store.hh"
#include "marlin/replay/transition_ring.hh"

namespace marlin::replay
{

/** Construction knobs for ShardedStore. */
struct ShardedStoreConfig
{
    /** Power-of-two shard count. */
    std::size_t shards = 1;
    /**
     * Joint transitions kept in RAM across all shards; 0 means
     * all-hot (hotCapacity = capacity). Rounded the same way as
     * capacity: must be a multiple of the shard count.
     */
    BufferIndex hotCapacity = 0;
    /** Cold-segment directory; empty disables the cold tier. */
    std::string coldDir;
    /** Records per cold segment file. */
    BufferIndex segmentSlots = MmapColdTier::kDefaultSegmentSlots;
};

/** Power-of-two sharded ring with an optional mmap cold tier. */
class ShardedStore : public ReplayStore
{
  public:
    ShardedStore(std::vector<TransitionShape> shapes,
                 BufferIndex capacity, ShardedStoreConfig config);

    // ReplayStore interface.
    const char *backendName() const override { return "sharded"; }
    std::size_t numAgents() const override { return shapes.size(); }
    const TransitionShape &
    agentShape(std::size_t agent) const override
    {
        return shapes[agent];
    }
    BufferIndex capacity() const override { return _capacity; }
    BufferIndex size() const override
    {
        return _appended < _capacity ? _appended : _capacity;
    }
    BufferIndex writeCursor() const override
    {
        return _appended % _capacity;
    }

    void append(const std::vector<std::vector<Real>> &obs,
                const std::vector<std::vector<Real>> &actions,
                const std::vector<Real> &rewards,
                const std::vector<std::vector<Real>> &next_obs,
                const std::vector<bool> &dones) override;

    void appendRecord(const JointTransitionLayout &layout,
                      const Real *rec) override;

    /**
     * Gathers stage cold faults through one shared scratch row, so
     * at most one thread may gather at a time (see coldStage).
     */
    void gatherAgent(std::size_t agent, const IndexPlan &plan,
                     AgentBatch &out,
                     AccessTrace *trace = nullptr) const override;

    void gatherAll(const IndexPlan &plan,
                   std::vector<AgentBatch> &out,
                   AccessTrace *trace = nullptr) const override;

    std::size_t storageBytes() const override;

    void saveState(std::ostream &os) const override;
    StoreLoadResult loadState(std::istream &is) override;

    // Sharding introspection (tests / benches / metrics).
    std::size_t shardCount() const { return shards_.size(); }
    BufferIndex hotCapacity() const { return hotCap; }
    bool coldEnabled() const { return !coldDir.empty(); }
    const JointTransitionLayout &layout() const { return _layout; }

    /** True when logical @p slot is resident in the hot ring. */
    bool isHot(BufferIndex slot) const;

    /** Cold tier of shard @p s (null when cold is disabled). */
    const MmapColdTier *
    coldTier(std::size_t s) const
    {
        return shards_[s].cold.get();
    }

    /** Flush cold segments (headers + msync); no-op when all-hot. */
    void flushCold() const;

    /** Drop cold-tier page cache (test hook; no-op when all-hot). */
    void dropColdPageCache() const;

  private:
    struct Shard
    {
        std::vector<Real> hot; ///< hotSlots * stride Reals.
        BufferIndex appended = 0;
        std::unique_ptr<MmapColdTier> cold;
    };

    /**
     * Record pointer for logical @p slot; sets @p cold_hit when the
     * record came from the mapped cold tier (counts the fault).
     */
    const Real *recordAt(BufferIndex slot, bool *cold_hit) const;

    /** Copy one record's agent fields into the batch row. */
    void scatterRecord(const Real *rec, std::size_t row,
                       std::vector<AgentBatch> &out,
                       AccessTrace *trace) const;

    std::vector<TransitionShape> shapes;
    JointTransitionLayout _layout;
    BufferIndex _capacity;
    BufferIndex hotCap;
    std::size_t shardBits;
    BufferIndex shardSlots;    ///< capacity / shards.
    BufferIndex hotSlots;      ///< hotCapacity / shards.
    BufferIndex _appended = 0; ///< Lifetime joint appends.
    std::string coldDir;
    std::vector<Shard> shards_;
    /**
     * Retained staging row for append()'s pack step, sized once at
     * construction so the steady-state append stays allocation-free
     * (the PR-5 contract).
     */
    std::vector<Real> packScratch;
    /**
     * Retained workspace slot cold gathers stage records through:
     * gatherAll copies a faulted record here once, then scatters to
     * every agent from RAM instead of touching the mapped page per
     * agent. All-hot gathers never use it, preserving the zero-alloc
     * steady state.
     *
     * THREADING: this is one shared, unsynchronized scratch row, so
     * at most ONE thread may run gatherAgent/gatherAll at a time
     * (today that is the trainer update's serial prologue). Parallel
     * gathers would need per-caller staging before they are safe.
     */
    mutable std::vector<Real> coldStage;
};

} // namespace marlin::replay

#endif // MARLIN_REPLAY_SHARDED_STORE_HH
