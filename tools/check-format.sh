#!/usr/bin/env sh
# clang-format check (no rewriting) over a curated file list.
#
# The repo predates .clang-format, so enforcement is opt-in per file:
# files are added here once they are known to be clean under the
# config, instead of mass-reformatting history in one unreviewable
# commit. New files should be written clean and added to the list.
#
# Usage: tools/check-format.sh          (uses clang-format on PATH)
#        CLANG_FORMAT=clang-format-18 tools/check-format.sh
set -eu
cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"

FILES="
src/marlin/base/cpu.hh
src/marlin/base/cpu.cc
"

"$CLANG_FORMAT" --version
# shellcheck disable=SC2086  # word splitting of FILES is intended
"$CLANG_FORMAT" --dry-run -Werror $FILES
echo "format check passed"
