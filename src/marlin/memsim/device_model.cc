#include "marlin/memsim/device_model.hh"

namespace marlin::memsim
{

DeviceConfig
makeRtx3090()
{
    DeviceConfig d;
    d.name = "rtx_3090";
    d.launchLatency = 8e-6;
    d.pcieBandwidth = 24e9; // PCIe 4.0 x16, effective.
    d.flops = 29e12;        // FP32 sustained (of 35.6 peak).
    d.present = true;
    return d;
}

DeviceConfig
makeGtx1070()
{
    DeviceConfig d;
    d.name = "gtx_1070";
    d.launchLatency = 12e-6;
    d.pcieBandwidth = 11e9; // PCIe 3.0 x16, effective.
    d.flops = 5.5e12;       // FP32 sustained (of 6.5 peak).
    d.present = true;
    return d;
}

double
offloadSeconds(const DeviceConfig &device, double flop,
               double bytes_to_device, double bytes_to_host)
{
    if (!device.present)
        return 0.0;
    const double transfer =
        (bytes_to_device + bytes_to_host) / device.pcieBandwidth;
    const double compute = flop / device.flops;
    return device.launchLatency + transfer + compute;
}

double
mlpForwardFlops(std::size_t batch, std::size_t in, std::size_t hidden,
                std::size_t out)
{
    // Two hidden layers: in->h, h->h, h->out; 2 FLOPs per MAC.
    const double b = static_cast<double>(batch);
    const double i = static_cast<double>(in);
    const double h = static_cast<double>(hidden);
    const double o = static_cast<double>(out);
    return 2.0 * b * (i * h + h * h + h * o);
}

} // namespace marlin::memsim
