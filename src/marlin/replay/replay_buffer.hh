/**
 * @file
 * Per-agent experience replay buffer (structure-of-arrays ring).
 *
 * This is the baseline layout the paper characterizes: each agent's
 * transitions live in their own large arrays (paper: capacity 1e6),
 * and each trainer gathers mini-batches from *every* agent's buffer,
 * producing the O(N^2 * B) lookup-read-write pattern of Figure 5.
 */

#ifndef MARLIN_REPLAY_REPLAY_BUFFER_HH
#define MARLIN_REPLAY_REPLAY_BUFFER_HH

#include <iosfwd>
#include <vector>

#include "marlin/base/logging.hh"
#include "marlin/replay/replay_store.hh"
#include "marlin/replay/transition.hh"

namespace marlin::replay
{

/**
 * Fixed-capacity ring buffer of one agent's transitions, stored as
 * parallel flat arrays so a row gather is a few contiguous copies.
 */
class ReplayBuffer
{
  public:
    /**
     * @param shape Observation/action dimensions for this agent.
     * @param capacity Max transitions held (paper uses 1e6).
     */
    ReplayBuffer(TransitionShape shape, BufferIndex capacity);

    const TransitionShape &shape() const { return _shape; }
    BufferIndex capacity() const { return _capacity; }

    /** Number of valid transitions currently stored. */
    BufferIndex size() const { return _size; }

    /** Ring cursor (next write slot). */
    BufferIndex position() const { return pos; }

    bool empty() const { return _size == 0; }

    /** Append one transition, evicting the oldest when full. */
    void add(const Real *obs, const Real *action, Real reward,
             const Real *next_obs, bool done);

    /** Convenience overload for std::vector inputs. */
    void add(const std::vector<Real> &obs,
             const std::vector<Real> &action, Real reward,
             const std::vector<Real> &next_obs, bool done);

    /** View of the transition at ring slot @p idx. @pre idx < size. */
    TransitionView view(BufferIndex idx) const;

    // Raw row pointers (hot-path gather API; no bounds checks beyond
    // assertions so the sampler microbenches measure memory, not
    // branchy validation).
    const Real *
    obsRow(BufferIndex i) const
    {
        return obsData.data() + i * _shape.obsDim;
    }

    const Real *
    actRow(BufferIndex i) const
    {
        return actData.data() + i * _shape.actDim;
    }

    const Real *
    nextObsRow(BufferIndex i) const
    {
        return nextObsData.data() + i * _shape.obsDim;
    }

    Real rewardAt(BufferIndex i) const { return rewData[i]; }
    Real doneAt(BufferIndex i) const { return doneData[i]; }

    /** Total bytes of transition storage (for working-set reports). */
    std::size_t storageBytes() const;

    /**
     * Serialize shape, cursors and the valid transition region
     * (slots [0, size) — the ring only ever holds valid data there).
     */
    void saveState(std::ostream &os) const;

    /**
     * Restore state written by saveState on a same-shape buffer.
     * Geometry (shape AND capacity) is validated against this
     * buffer before any data is touched; a mismatch returns a typed
     * error instead of relying on downstream shape checks.
     */
    StoreLoadResult loadState(std::istream &is);

  private:
    TransitionShape _shape;
    BufferIndex _capacity;
    BufferIndex _size = 0;
    BufferIndex pos = 0;

    std::vector<Real> obsData;
    std::vector<Real> actData;
    std::vector<Real> rewData;
    std::vector<Real> nextObsData;
    std::vector<Real> doneData;
};

/**
 * The set of per-agent replay buffers for one MARL training run.
 * All buffers advance in lock-step (one add per agent per env step),
 * so a single index addresses the same timestep in every buffer —
 * the property the common indices array of Figure 5 relies on.
 */
class MultiAgentBuffer : public ReplayStore
{
  public:
    /**
     * @param shapes One TransitionShape per agent.
     * @param capacity Shared ring capacity.
     */
    MultiAgentBuffer(std::vector<TransitionShape> shapes,
                     BufferIndex capacity);

    const char *backendName() const override { return "per_agent"; }
    std::size_t numAgents() const override { return buffers.size(); }
    BufferIndex capacity() const override { return _capacity; }

    const TransitionShape &
    agentShape(std::size_t agent) const override
    {
        return buffers[agent].shape();
    }

    /** Synchronized size (identical across agents). */
    BufferIndex size() const override;

    /** Ring cursor (identical across agents). */
    BufferIndex writeCursor() const override
    {
        return buffers.front().position();
    }

    ReplayBuffer &agent(std::size_t i) { return buffers[i]; }
    const ReplayBuffer &agent(std::size_t i) const { return buffers[i]; }

    /**
     * Append one joint transition (one record per agent).
     * All vectors are indexed by agent.
     */
    void append(const std::vector<std::vector<Real>> &obs,
                const std::vector<std::vector<Real>> &actions,
                const std::vector<Real> &rewards,
                const std::vector<std::vector<Real>> &next_obs,
                const std::vector<bool> &dones) override;

    /** Historical name for append(); kept for existing call sites. */
    void
    add(const std::vector<std::vector<Real>> &obs,
        const std::vector<std::vector<Real>> &actions,
        const std::vector<Real> &rewards,
        const std::vector<std::vector<Real>> &next_obs,
        const std::vector<bool> &dones)
    {
        append(obs, actions, rewards, next_obs, dones);
    }

    /** Scatter one packed joint record into every agent's ring. */
    void appendRecord(const JointTransitionLayout &layout,
                      const Real *rec) override;

    void gatherAgent(std::size_t agent, const IndexPlan &plan,
                     AgentBatch &out,
                     AccessTrace *trace = nullptr) const override;

    void gatherAll(const IndexPlan &plan,
                   std::vector<AgentBatch> &out,
                   AccessTrace *trace = nullptr) const override;

    /** Sum of per-agent storage. */
    std::size_t storageBytes() const override;

    /** Serialize every agent's buffer state. */
    void saveState(std::ostream &os) const override;

    /** Restore state written by saveState (same shapes/capacity). */
    StoreLoadResult loadState(std::istream &is) override;

  private:
    BufferIndex _capacity;
    std::vector<ReplayBuffer> buffers;
};

} // namespace marlin::replay

#endif // MARLIN_REPLAY_REPLAY_BUFFER_HH
