#include "marlin/memsim/cache.hh"

namespace marlin::memsim
{

namespace
{

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

CacheModel::CacheModel(CacheConfig config) : _config(config)
{
    MARLIN_ASSERT(_config.lineBytes > 0 && isPow2(_config.lineBytes),
                  "cache line size must be a power of two");
    MARLIN_ASSERT(_config.ways > 0, "cache needs at least one way");
    const std::uint64_t num_lines =
        _config.sizeBytes / _config.lineBytes;
    MARLIN_ASSERT(num_lines >= _config.ways,
                  "cache smaller than one set");
    // Non-power-of-two set counts are fine: set = line % sets and
    // tag = line / sets still uniquely identify a line.
    sets = num_lines / _config.ways;
    lines.resize(sets * _config.ways);
}

CacheModel::Line *
CacheModel::lookup(std::uint64_t addr, bool &hit)
{
    const std::uint64_t set = setOf(addr);
    const std::uint64_t tag = tagOf(addr);
    Line *base = lines.data() + set * _config.ways;
    Line *victim = base;
    for (std::uint32_t w = 0; w < _config.ways; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            hit = true;
            return &line;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid &&
                   line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }
    hit = false;
    return victim;
}

bool
CacheModel::access(std::uint64_t addr)
{
    bool hit = false;
    Line *line = lookup(addr, hit);
    ++useClock;
    if (hit) {
        ++_stats.hits;
        if (line->prefetched) {
            ++_stats.prefetchHits;
            line->prefetched = false;
        }
    } else {
        ++_stats.misses;
        if (line->valid)
            ++_stats.evictions;
        line->valid = true;
        line->tag = tagOf(addr);
        line->prefetched = false;
    }
    line->lastUse = useClock;
    return hit;
}

void
CacheModel::prefetchFill(std::uint64_t addr)
{
    bool hit = false;
    Line *line = lookup(addr, hit);
    ++useClock;
    if (!hit) {
        if (line->valid)
            ++_stats.evictions;
        line->valid = true;
        line->tag = tagOf(addr);
        line->prefetched = true;
        ++_stats.prefetchFills;
        // Prefetches fill at LRU+1 priority: cheap approximation is
        // to stamp them like a normal use.
        line->lastUse = useClock;
    }
}

bool
CacheModel::contains(std::uint64_t addr) const
{
    const std::uint64_t set = setOf(addr);
    const std::uint64_t tag = tagOf(addr);
    const Line *base = lines.data() + set * _config.ways;
    for (std::uint32_t w = 0; w < _config.ways; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

void
CacheModel::reset()
{
    for (Line &line : lines)
        line = Line{};
    _stats = CacheStats{};
    useClock = 0;
}

} // namespace marlin::memsim
