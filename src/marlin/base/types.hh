/**
 * @file
 * Common scalar type aliases used throughout MARLin.
 */

#ifndef MARLIN_BASE_TYPES_HH
#define MARLIN_BASE_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace marlin
{

/** Index of an agent within a multi-agent environment. */
using AgentId = int;

/** Index into a replay buffer (supports capacities beyond 2^31). */
using BufferIndex = std::size_t;

/** Count of environment steps / training iterations. */
using StepCount = std::uint64_t;

/** Scalar type used by the numeric and NN substrates. */
using Real = float;

} // namespace marlin

#endif // MARLIN_BASE_TYPES_HH
