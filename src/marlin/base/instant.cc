#include "marlin/base/instant.hh"

#include <atomic>

namespace marlin::base
{

namespace
{

/**
 * Captured during static initialization so spans recorded from any
 * point in main() have non-negative offsets. Dynamic-init order
 * relative to other TUs does not matter: the first call from any
 * consumer happens long after all static init completed.
 */
const std::chrono::steady_clock::time_point g_processStart =
    std::chrono::steady_clock::now();

std::atomic<unsigned> g_nextThreadTag{0};

} // namespace

std::chrono::steady_clock::time_point
processStartTime() noexcept
{
    return g_processStart;
}

std::uint64_t
nsSinceStart(std::chrono::steady_clock::time_point tp) noexcept
{
    if (tp <= g_processStart)
        return 0;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            tp - g_processStart)
            .count());
}

std::uint64_t
nowNsSinceStart() noexcept
{
    return nsSinceStart(std::chrono::steady_clock::now());
}

unsigned
currentThreadTag() noexcept
{
    thread_local const unsigned tag =
        g_nextThreadTag.fetch_add(1, std::memory_order_relaxed);
    return tag;
}

} // namespace marlin::base
