/**
 * @file
 * Row-major dense matrix of Real, the storage type of the NN
 * substrate. Rows are mini-batch entries; columns are features.
 */

#ifndef MARLIN_NUMERIC_MATRIX_HH
#define MARLIN_NUMERIC_MATRIX_HH

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "marlin/base/logging.hh"
#include "marlin/base/types.hh"

namespace marlin::numeric
{

/**
 * Dense row-major matrix. Designed for small/medium shapes (the
 * paper's networks are batch=1024 by <=~2500 features), so the
 * implementation favours simplicity and cache-friendly traversal
 * over vendor BLAS.
 */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** Zero-initialized rows x cols matrix. */
    Matrix(std::size_t rows, std::size_t cols)
        : _rows(rows), _cols(cols), _data(rows * cols, Real(0)) {}

    /** Matrix with explicit contents (row-major). */
    Matrix(std::size_t rows, std::size_t cols, std::vector<Real> data)
        : _rows(rows), _cols(cols), _data(std::move(data))
    {
        MARLIN_ASSERT(_data.size() == _rows * _cols,
                      "matrix data size mismatch");
    }

    /** Build from nested initializer lists (test convenience). */
    Matrix(std::initializer_list<std::initializer_list<Real>> rows_init);

    std::size_t rows() const { return _rows; }
    std::size_t cols() const { return _cols; }
    std::size_t size() const { return _data.size(); }
    bool empty() const { return _data.empty(); }

    Real *data() { return _data.data(); }
    const Real *data() const { return _data.data(); }

    /** Pointer to the start of row @p r. */
    Real *row(std::size_t r) { return _data.data() + r * _cols; }
    const Real *
    row(std::size_t r) const
    {
        return _data.data() + r * _cols;
    }

    Real &
    operator()(std::size_t r, std::size_t c)
    {
        return _data[r * _cols + c];
    }

    Real
    operator()(std::size_t r, std::size_t c) const
    {
        return _data[r * _cols + c];
    }

    /** Reset all elements to zero without reallocating. */
    void zero();

    /** Fill with a constant. */
    void fill(Real value);

    /**
     * Resize to rows x cols and zero every element. Storage is
     * capacity-retaining: shrinking or re-growing within the
     * high-water mark never touches the allocator, which is what
     * lets warm hot-path scratch matrices be reshaped per batch at
     * zero allocation cost.
     */
    void resize(std::size_t rows, std::size_t cols);

    /**
     * Resize to rows x cols WITHOUT defining the contents (existing
     * elements keep whatever was there; grown elements are
     * unspecified). Same capacity-retaining storage contract as
     * resize(). For outputs that every caller fully overwrites —
     * skipping the zero-fill keeps the write out of the cache twice.
     */
    void reshape(std::size_t rows, std::size_t cols);

    /** Elementwise in-place operations. */
    Matrix &operator+=(const Matrix &other);
    Matrix &operator-=(const Matrix &other);
    Matrix &operator*=(Real scale);

    /** Returns the transpose (new storage). */
    Matrix transposed() const;

    /**
     * Copy @p src_row of @p src into @p dst_row of this matrix.
     * Column counts must match.
     */
    void copyRowFrom(std::size_t dst_row, const Matrix &src,
                     std::size_t src_row);

    /** True when shapes and all elements match exactly. */
    bool operator==(const Matrix &other) const = default;

  private:
    std::size_t _rows = 0;
    std::size_t _cols = 0;
    std::vector<Real> _data;
};

} // namespace marlin::numeric

#endif // MARLIN_NUMERIC_MATRIX_HH
