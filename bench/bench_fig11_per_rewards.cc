/**
 * @file
 * Figure 11 + Section VI-C1: information-prioritized locality-aware
 * sampling (IP-MADDPG) vs the PER-MADDPG baseline — reward curves
 * on PP-6, CN-6 and CN-12, plus the mini-batch sampling speedup
 * (the paper reports ~2x averaged over 3/6/12 agents).
 */

#include "common.hh"

namespace
{

using namespace marlin;
using namespace marlin::bench;

struct Curve
{
    std::string label;
    std::vector<Real> rewards;
};

Curve
trainCurve(Task task, std::size_t agents, std::size_t episodes,
           const std::string &label, core::SamplerFactory factory)
{
    auto environment = makeEnvironment(task, agents, 24);
    core::TrainConfig config;
    config.batchSize = 128;
    config.bufferCapacity = 1 << 15;
    config.warmupTransitions = 256;
    config.updateEvery = 50;
    config.hiddenDims = {32, 32};
    config.epsilonDecayEpisodes = episodes / 2;
    config.seed = 24;
    core::MaddpgTrainer trainer(obsDims(*environment),
                                environment->actionDim(), config,
                                std::move(factory));
    core::TrainLoop loop(*environment, trainer, config);
    return {label, loop.run(episodes).episodeRewards};
}

void
rewardScenario(Task task, std::size_t agents, std::size_t episodes)
{
    std::printf("\n%s-%zu (%zu episodes)\n", taskName(task), agents,
                episodes);
    const BufferIndex cap = 1 << 15;
    std::vector<Curve> curves;
    curves.push_back(trainCurve(task, agents, episodes,
                                "per_maddpg", perFactory(cap)));
    curves.push_back(trainCurve(task, agents, episodes, "ip_maddpg",
                                infoPrioritizedFactory(cap)));

    std::printf("%-10s %12s %12s\n", "decile", "per_maddpg",
                "ip_maddpg");
    const std::size_t per = episodes / 10;
    for (std::size_t b = 0; b < 10; ++b) {
        std::printf("%-10zu", b + 1);
        for (const auto &c : curves) {
            double mean = 0;
            for (std::size_t e = b * per; e < (b + 1) * per; ++e)
                mean += c.rewards[e];
            std::printf(" %12.1f", mean / per);
        }
        std::printf("\n");
    }
}

/** Sampling phase (plan + gather) time per update, seconds. */
double
samplingSeconds(replay::Sampler &sampler,
                const replay::MultiAgentBuffer &buffers, int reps)
{
    Rng rng(3);
    std::vector<replay::AgentBatch> batches;
    for (std::size_t t = 0; t < buffers.numAgents(); ++t) {
        auto plan = sampler.plan(buffers.size(), 1024, rng);
        replay::gatherAllAgents(buffers, plan, batches);
    }
    profile::Stopwatch sw;
    for (int rep = 0; rep < reps; ++rep) {
        for (std::size_t t = 0; t < buffers.numAgents(); ++t) {
            auto plan = sampler.plan(buffers.size(), 1024, rng);
            replay::gatherAllAgents(buffers, plan, batches);
        }
    }
    return sw.elapsedSeconds() / reps;
}

void
speedupTable(Task task)
{
    std::printf("\nsampling-phase speedup of IP vs PER, %s\n",
                taskName(task));
    std::printf("%-8s %14s %14s %10s\n", "agents", "per(ms)",
                "ip(ms)", "speedup");
    double product = 1;
    int rows = 0;
    for (std::size_t n : {3, 6, 12}) {
        auto shapes = taskShapes(task, n);
        const BufferIndex capacity =
            scaledCapacity(shapes, 512ull << 20);
        replay::MultiAgentBuffer buffers(shapes, capacity);
        Rng fill_rng(n);
        fillSynthetic(buffers, capacity, fill_rng);

        replay::PerConfig per_cfg;
        per_cfg.capacity = capacity;
        replay::PrioritizedSampler per(per_cfg);
        replay::InfoPrioritizedLocalitySampler ip(per_cfg);
        // Initialize priorities with a realistic spread.
        Rng prio_rng(n + 1);
        std::vector<BufferIndex> ids(capacity);
        std::vector<Real> tds(capacity);
        for (BufferIndex i = 0; i < capacity; ++i) {
            ids[i] = i;
            tds[i] = prio_rng.uniformf() * 2;
        }
        per.updatePriorities(ids, tds);
        ip.updatePriorities(ids, tds);

        const int reps = n >= 12 ? 2 : 4;
        const double t_per = samplingSeconds(per, buffers, reps);
        const double t_ip = samplingSeconds(ip, buffers, reps);
        std::printf("%-8zu %14.2f %14.2f %9.2fx\n", n, t_per * 1e3,
                    t_ip * 1e3, t_per / t_ip);
        product *= t_per / t_ip;
        ++rows;
    }
    std::printf("geomean speedup: %.2fx (paper: ~2x)\n",
                std::pow(product, 1.0 / rows));
}

} // namespace

int
main(int argc, char **argv)
{
    initThreads(argc, argv);
    initIsa(argc, argv);
    initLogLevel(argc, argv);
    ObsSession obs(argc, argv, "bench_fig11_per_rewards");
    banner("Figure 11 / Section VI-C1: information-prioritized "
           "locality-aware sampling");
    rewardScenario(Task::PredatorPrey, 6, 1600);
    rewardScenario(Task::CooperativeNavigation, 6, 1600);
    rewardScenario(Task::CooperativeNavigation, 12, 600);
    std::printf("\npaper shape: IP-MADDPG reward curves are "
                "comparable to PER-MADDPG.\n");

    speedupTable(Task::PredatorPrey);
    speedupTable(Task::CooperativeNavigation);
    return 0;
}
