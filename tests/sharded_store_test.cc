/**
 * @file
 * Tests for the sharded, out-of-core replay engine (PR-10): the
 * cross-shard determinism contract (bit-identical sampling for any
 * power-of-two shard count), the spill/fault round trip through the
 * mmap cold tier (including a forced page-cache drop so reads truly
 * come back from disk), the zero-allocation all-hot gather steady
 * state, cold-segment header CRC detection, and typed geometry
 * errors from ShardedStore/MultiAgentBuffer state restores.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <sstream>
#include <vector>

#include "marlin/base/alloc_guard.hh"
#include "marlin/base/fault_injector.hh"
#include "marlin/base/random.hh"
#include "marlin/numeric/matrix.hh"
#include "marlin/replay/cold_tier.hh"
#include "marlin/replay/gather.hh"
#include "marlin/replay/replay_buffer.hh"
#include "marlin/replay/reuse_sampler.hh"
#include "marlin/replay/sharded_store.hh"
#include "marlin/replay/uniform_sampler.hh"

namespace marlin::replay
{
namespace
{

/** Two agents with unequal obs dims so per-agent offsets matter. */
std::vector<TransitionShape>
testShapes()
{
    return {{3, 2}, {4, 2}};
}

/** Fresh scratch directory under the gtest temp root. */
std::string
freshDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "marlin_" + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/** Append transition @p t with recognizable per-agent content. */
void
appendMarked(ReplayStore &store, int t)
{
    std::vector<std::vector<Real>> obs, act, next;
    std::vector<Real> rew;
    std::vector<bool> done;
    for (std::size_t a = 0; a < store.numAgents(); ++a) {
        const TransitionShape &shape = store.agentShape(a);
        const Real base =
            static_cast<Real>(t) + Real(0.01) * static_cast<Real>(a);
        obs.emplace_back(shape.obsDim, base);
        std::vector<Real> action(shape.actDim, Real(0));
        action[static_cast<std::size_t>(t) % shape.actDim] = Real(1);
        act.push_back(std::move(action));
        next.emplace_back(shape.obsDim, base + Real(0.5));
        rew.push_back(base * Real(2));
        done.push_back(t % 7 == 0);
    }
    store.append(obs, act, rew, next, done);
}

/** Gather every valid slot of @p store in logical order. */
std::vector<AgentBatch>
gatherEverything(const ReplayStore &store)
{
    IndexPlan plan;
    plan.indices.resize(store.size());
    for (BufferIndex i = 0; i < store.size(); ++i)
        plan.indices[i] = i;
    plan.weights.assign(store.size(), Real(1));
    std::vector<AgentBatch> out;
    store.gatherAll(plan, out);
    return out;
}

void
expectMatricesEqual(const Matrix &a, const Matrix &b,
                    const char *what, std::size_t agent)
{
    ASSERT_EQ(a.rows(), b.rows()) << what << " agent " << agent;
    ASSERT_EQ(a.cols(), b.cols()) << what << " agent " << agent;
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a.data()[i], b.data()[i])
            << what << " agent " << agent << " element " << i;
}

void
expectBatchesEqual(const std::vector<AgentBatch> &a,
                   const std::vector<AgentBatch> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        expectMatricesEqual(a[i].obs, b[i].obs, "obs", i);
        expectMatricesEqual(a[i].actions, b[i].actions, "actions", i);
        expectMatricesEqual(a[i].rewards, b[i].rewards, "rewards", i);
        expectMatricesEqual(a[i].nextObs, b[i].nextObs, "nextObs", i);
        expectMatricesEqual(a[i].dones, b[i].dones, "dones", i);
    }
}

// --- cross-shard determinism ---------------------------------------

/**
 * The tentpole contract: samplers plan over the logical index space
 * and sharding is pure address arithmetic, so the same seed yields
 * bit-identical batches for ANY shard count.
 */
TEST(ShardedStore, UniformSamplingBitIdenticalAcrossShardCounts)
{
    constexpr BufferIndex capacity = 256;
    constexpr int filled = 200;
    constexpr std::size_t batch = 32;

    std::vector<std::vector<AgentBatch>> gathered;
    std::vector<std::vector<BufferIndex>> planned;
    for (std::size_t shards : {1u, 2u, 8u}) {
        ShardedStoreConfig cfg;
        cfg.shards = shards;
        ShardedStore store(testShapes(), capacity, cfg);
        for (int t = 0; t < filled; ++t)
            appendMarked(store, t);

        UniformSampler sampler;
        Rng rng(1234);
        IndexPlan plan;
        std::vector<AgentBatch> out;
        // Several rounds so ring state, not just the first draw, is
        // covered.
        for (int round = 0; round < 4; ++round) {
            sampler.planInto(store.size(), batch, rng, plan);
            store.gatherAll(plan, out);
        }
        planned.push_back(plan.indices);
        gathered.push_back(std::move(out));
    }
    EXPECT_EQ(planned[0], planned[1]);
    EXPECT_EQ(planned[0], planned[2]);
    expectBatchesEqual(gathered[0], gathered[1]);
    expectBatchesEqual(gathered[0], gathered[2]);
}

/** Same contract through the AccMER reuse sampler's cached plans. */
TEST(ShardedStore, AccmerSamplingBitIdenticalAcrossShardCounts)
{
    constexpr BufferIndex capacity = 256;
    constexpr int filled = 220;
    constexpr std::size_t batch = 32;

    std::vector<std::vector<AgentBatch>> gathered;
    std::vector<std::vector<BufferIndex>> planned;
    for (std::size_t shards : {1u, 2u, 8u}) {
        ShardedStoreConfig cfg;
        cfg.shards = shards;
        ShardedStore store(testShapes(), capacity, cfg);

        PerConfig per;
        per.capacity = capacity;
        ReuseConfig reuse;
        reuse.reuseWindow = 3;
        reuse.runLength = 4;
        ReuseSampler sampler(per, reuse);
        for (int t = 0; t < filled; ++t) {
            appendMarked(store, t);
            sampler.onAdd(store.writeCursor() == 0
                              ? capacity - 1
                              : store.writeCursor() - 1);
        }

        Rng rng(99);
        IndexPlan plan;
        std::vector<AgentBatch> out;
        // 7 rounds crosses two reuse windows (fresh, cached, cached,
        // fresh, ...), so both the draw and the replay paths run.
        for (int round = 0; round < 7; ++round) {
            sampler.planInto(store.size(), batch, rng, plan);
            store.gatherAll(plan, out);
        }
        planned.push_back(plan.indices);
        gathered.push_back(std::move(out));
    }
    EXPECT_EQ(planned[0], planned[1]);
    EXPECT_EQ(planned[0], planned[2]);
    expectBatchesEqual(gathered[0], gathered[1]);
    expectBatchesEqual(gathered[0], gathered[2]);
}

// --- cold tier round trip ------------------------------------------

/**
 * Spill, wrap the ring, drop the page cache, and gather everything:
 * records faulted back from the mmap segments must be byte-identical
 * to an all-hot store fed the same append stream.
 */
TEST(ShardedStore, SpillGatherRoundTripSurvivesPageCacheDrop)
{
    constexpr BufferIndex capacity = 64;
    const std::string dir = freshDir("spill_roundtrip");

    ShardedStoreConfig cold_cfg;
    cold_cfg.shards = 2;
    cold_cfg.hotCapacity = 16;
    cold_cfg.coldDir = dir;
    cold_cfg.segmentSlots = 8; // Several segments per shard.
    ShardedStore cold_store(testShapes(), capacity, cold_cfg);

    ShardedStoreConfig hot_cfg;
    hot_cfg.shards = 2;
    ShardedStore hot_store(testShapes(), capacity, hot_cfg);

    // 1.5x capacity: the ring wraps and cold slots get rewritten.
    for (int t = 0; t < 96; ++t) {
        appendMarked(cold_store, t);
        appendMarked(hot_store, t);
    }
    ASSERT_EQ(cold_store.size(), capacity);
    ASSERT_GT(cold_store.coldTier(0)->spilledCount(), 0u);

    // Force the next reads to fault in from disk, not page cache.
    cold_store.dropColdPageCache();

    expectBatchesEqual(gatherEverything(cold_store),
                       gatherEverything(hot_store));
}

TEST(ShardedStore, HotWindowTracksNewestRecords)
{
    const std::string dir = freshDir("hot_window");
    ShardedStoreConfig cfg;
    cfg.shards = 2;
    cfg.hotCapacity = 8;
    cfg.coldDir = dir;
    ShardedStore store(testShapes(), 32, cfg);
    for (int t = 0; t < 32; ++t)
        appendMarked(store, t);
    // Slots 0..23 evicted to cold, newest 8 (24..31) still hot.
    for (BufferIndex slot = 0; slot < 24; ++slot)
        EXPECT_FALSE(store.isHot(slot)) << "slot " << slot;
    for (BufferIndex slot = 24; slot < 32; ++slot)
        EXPECT_TRUE(store.isHot(slot)) << "slot " << slot;
}

// --- zero-alloc steady state ---------------------------------------

/** All-hot gathers reuse retained matrices: the PR-5 contract. */
TEST(ShardedStore, AllHotGatherIsAllocationFree)
{
    ShardedStoreConfig cfg;
    cfg.shards = 4;
    ShardedStore store(testShapes(), 128, cfg);
    for (int t = 0; t < 128; ++t)
        appendMarked(store, t);

    IndexPlan plan;
    plan.indices.resize(32);
    plan.weights.assign(32, Real(1));
    Rng rng(5);
    std::vector<AgentBatch> out;
    for (std::size_t i = 0; i < plan.indices.size(); ++i)
        plan.indices[i] = rng.randint(store.size());
    store.gatherAll(plan, out); // Warm: matrices sized here.

    base::AllocGuard guard(base::AllocGuard::Mode::Forbid);
    for (int round = 0; round < 8; ++round) {
        for (std::size_t i = 0; i < plan.indices.size(); ++i)
            plan.indices[i] = rng.randint(store.size());
        store.gatherAll(plan, out);
    }
    EXPECT_EQ(guard.allocations(), 0u);
    EXPECT_EQ(guard.bytes(), 0u);
}

// --- cold segment integrity ----------------------------------------

TEST(ColdTier, RestoreVerifiesHeaderCrcAndGeometry)
{
    const std::string dir = freshDir("cold_crc");
    constexpr std::size_t stride = 8;
    constexpr BufferIndex slots = 32;
    constexpr BufferIndex seg_slots = 16;

    std::vector<std::uint64_t> seg_records;
    std::uint64_t spilled = 0;
    std::vector<Real> rec(stride);
    {
        MmapColdTier tier(dir, 0, 1, stride, slots, seg_slots);
        for (BufferIndex slot = 0; slot < slots; ++slot) {
            for (std::size_t k = 0; k < stride; ++k)
                rec[k] = static_cast<Real>(slot * stride + k);
            tier.writeRecord(slot, rec.data());
        }
        tier.flush();
        seg_records = tier.segmentRecords();
        spilled = tier.spilledCount();
        ASSERT_EQ(tier.segmentCount(), 2u);
    }

    // A clean reopen restores and serves the spilled bytes back.
    {
        MmapColdTier tier(dir, 0, 1, stride, slots, seg_slots);
        const StoreLoadResult r = tier.restore(spilled, seg_records);
        ASSERT_TRUE(r) << r.detail;
        const Real *got = tier.readRecord(21);
        for (std::size_t k = 0; k < stride; ++k)
            EXPECT_EQ(got[k], static_cast<Real>(21 * stride + k));
    }

    // Flip a byte inside the second segment's header: restore must
    // fail with the typed Corrupt error, naming the file.
    const std::string victim =
        dir + "/shard-0000.seg-00001.mrcs";
    ASSERT_TRUE(base::corruptFileByte(victim, 8));
    {
        MmapColdTier tier(dir, 0, 1, stride, slots, seg_slots);
        const StoreLoadResult r = tier.restore(spilled, seg_records);
        ASSERT_FALSE(r);
        EXPECT_EQ(r.error, StoreLoadError::Corrupt);
        EXPECT_NE(r.detail.find("CRC"), std::string::npos)
            << r.detail;
    }
}

TEST(ColdTier, RestoreRejectsMissingSegment)
{
    const std::string dir = freshDir("cold_missing");
    std::vector<std::uint64_t> seg_records;
    std::uint64_t spilled = 0;
    {
        MmapColdTier tier(dir, 0, 1, 4, 16, 8);
        const std::vector<Real> rec(4, Real(1));
        for (BufferIndex slot = 0; slot < 16; ++slot)
            tier.writeRecord(slot, rec.data());
        tier.flush();
        seg_records = tier.segmentRecords();
        spilled = tier.spilledCount();
    }
    std::filesystem::remove(dir + "/shard-0000.seg-00000.mrcs");
    MmapColdTier tier(dir, 0, 1, 4, 16, 8);
    const StoreLoadResult r = tier.restore(spilled, seg_records);
    ASSERT_FALSE(r);
    EXPECT_EQ(r.error, StoreLoadError::IoError);
}

// --- state round trip and typed geometry errors --------------------

TEST(ShardedStore, SaveLoadRoundTripWithColdTier)
{
    constexpr BufferIndex capacity = 64;
    const std::string dir = freshDir("state_roundtrip");

    ShardedStoreConfig cfg;
    cfg.shards = 2;
    cfg.hotCapacity = 16;
    cfg.coldDir = dir;
    cfg.segmentSlots = 8;

    ShardedStore a(testShapes(), capacity, cfg);
    for (int t = 0; t < 80; ++t)
        appendMarked(a, t);

    std::ostringstream os;
    a.saveState(os);

    // Resume semantics: a fresh store over the SAME cold directory
    // (the segments are the cold half of the checkpoint).
    ShardedStore b(testShapes(), capacity, cfg);
    std::istringstream is(os.str());
    const StoreLoadResult r = b.loadState(is);
    ASSERT_TRUE(r) << r.detail;
    EXPECT_EQ(b.size(), a.size());
    EXPECT_EQ(b.writeCursor(), a.writeCursor());
    b.dropColdPageCache();
    expectBatchesEqual(gatherEverything(b), gatherEverything(a));
}

TEST(ShardedStore, LoadStateRejectsGeometryMismatch)
{
    ShardedStoreConfig cfg;
    cfg.shards = 2;
    ShardedStore a(testShapes(), 64, cfg);
    for (int t = 0; t < 10; ++t)
        appendMarked(a, t);
    std::ostringstream os;
    a.saveState(os);

    // Different capacity: typed ShapeMismatch, store untouched.
    ShardedStore b(testShapes(), 128, cfg);
    std::istringstream is(os.str());
    const StoreLoadResult r = b.loadState(is);
    ASSERT_FALSE(r);
    EXPECT_EQ(r.error, StoreLoadError::ShapeMismatch);
    EXPECT_EQ(b.size(), 0u);

    // Different shard count over the same capacity too.
    ShardedStoreConfig four = cfg;
    four.shards = 4;
    ShardedStore c(testShapes(), 64, four);
    std::istringstream is2(os.str());
    const StoreLoadResult r2 = c.loadState(is2);
    ASSERT_FALSE(r2);
    EXPECT_EQ(r2.error, StoreLoadError::ShapeMismatch);
}

TEST(MultiAgentBuffer, LoadStateRejectsCapacityMismatch)
{
    MultiAgentBuffer a({{3, 2}, {4, 2}}, 64);
    for (int t = 0; t < 5; ++t)
        appendMarked(a, t);
    std::ostringstream os;
    a.saveState(os);

    MultiAgentBuffer b({{3, 2}, {4, 2}}, 128);
    std::istringstream is(os.str());
    const StoreLoadResult r = b.loadState(is);
    ASSERT_FALSE(r);
    EXPECT_EQ(r.error, StoreLoadError::ShapeMismatch);
    EXPECT_NE(r.detail.find("does not match"), std::string::npos)
        << r.detail;
    EXPECT_EQ(b.size(), 0u) << "failed load must not mutate";
}

TEST(ShardedStore, TruncatedStateIsATypedError)
{
    ShardedStoreConfig cfg;
    cfg.shards = 2;
    ShardedStore a(testShapes(), 64, cfg);
    for (int t = 0; t < 20; ++t)
        appendMarked(a, t);
    std::ostringstream os;
    a.saveState(os);
    const std::string full = os.str();

    // The target store already holds DIFFERENT records: a truncated
    // payload must leave them byte-identical (the StoreLoadResult
    // contract), not half-overwritten with the checkpoint's.
    ShardedStore b(testShapes(), 64, cfg);
    for (int t = 100; t < 112; ++t)
        appendMarked(b, t);
    const std::vector<AgentBatch> before = gatherEverything(b);
    const BufferIndex size_before = b.size();

    std::istringstream is(full.substr(0, full.size() / 2));
    const StoreLoadResult r = b.loadState(is);
    ASSERT_FALSE(r);
    EXPECT_EQ(r.error, StoreLoadError::Truncated);
    EXPECT_EQ(b.size(), size_before)
        << "failed load must not mutate";
    expectBatchesEqual(gatherEverything(b), before);
}

// --- AccMER stratification coverage --------------------------------

/**
 * Fresh AccMER draws stratify over the full cumulative priority
 * mass: the loop emits ceil(batch/runLength) references, so the
 * strata must tile total() over THAT count. With uniform priorities
 * every fresh plan must therefore reference both the bottom and the
 * top quarter of the index space (regression: stratifying over
 * batch confined references to the first ~1/runLength of the mass,
 * leaving ~87% of it unsampleable at the default runLength=8).
 */
TEST(ReuseSampler, StratifiedReferencesCoverFullPriorityMass)
{
    constexpr BufferIndex capacity = 256;
    constexpr std::size_t batch = 32;

    PerConfig per;
    per.capacity = capacity;
    ReuseConfig reuse;
    reuse.reuseWindow = 1; // Every plan is a fresh draw.
    reuse.runLength = 8;   // 4 references per batch.
    ReuseSampler sampler(per, reuse);
    for (BufferIndex i = 0; i < capacity; ++i)
        sampler.onAdd(i);

    Rng rng(7);
    IndexPlan plan;
    for (int round = 0; round < 8; ++round) {
        sampler.planInto(capacity, batch, rng, plan);
        ASSERT_EQ(plan.priorityIds.size(), batch);
        BufferIndex lo = capacity, hi = 0;
        for (BufferIndex id : plan.priorityIds) {
            lo = id < lo ? id : lo;
            hi = id > hi ? id : hi;
        }
        // Uniform priorities: the first stratum's reference must sit
        // in the bottom quarter and the last one in the top quarter.
        EXPECT_LT(lo, capacity / 4) << "round " << round;
        EXPECT_GE(hi, capacity - capacity / 4) << "round " << round;
    }
}

} // namespace
} // namespace marlin::replay
