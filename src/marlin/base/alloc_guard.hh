/**
 * @file
 * Scoped heap-allocation accounting for the zero-allocation
 * steady-state contract.
 *
 * The paper's characterization blames MARL training time on
 * memory-hierarchy behaviour; allocation churn inside the step loop
 * pollutes the very caches the samplers optimize. AllocGuard makes
 * the discipline enforceable: the TU installs replacement global
 * operator new/delete hooks that count every heap allocation (and
 * its bytes) made while at least one guard is alive, and optionally
 * abort the process on the first allocation inside a Forbid scope.
 *
 * Design constraints:
 *  - Zero overhead when no guard is active beyond one relaxed atomic
 *    load per operator-new call.
 *  - The hooks live in the same translation unit as the AllocGuard
 *    class, so any binary that references AllocGuard (every training
 *    binary does, via TrainLoop) links the replacement operators.
 *    Binaries that never mention AllocGuard keep the default ones.
 *  - Counting is process-wide: allocations made by worker threads
 *    inside a guarded region are charged too, which is exactly what
 *    the steady-state contract needs to cover parallel updates.
 */

#ifndef MARLIN_BASE_ALLOC_GUARD_HH
#define MARLIN_BASE_ALLOC_GUARD_HH

#include <cstdint>

namespace marlin::base
{

/**
 * RAII scope that snapshots the global allocation counters so the
 * caller can ask "how many heap allocations happened in here?".
 * Guards nest: the counters advance while any guard is alive, and
 * each guard reports the delta since its own construction.
 */
class AllocGuard
{
  public:
    enum class Mode
    {
        /** Count allocations; never interfere. */
        Count,
        /**
         * Count, and abort() with a diagnostic on the first
         * allocation inside the scope — turns a broken
         * zero-allocation contract into a hard failure (used by the
         * MARLIN_ALLOC_GUARD=1 ctest leg).
         */
        Forbid
    };

    explicit AllocGuard(Mode mode = Mode::Count) noexcept;
    ~AllocGuard() noexcept;

    AllocGuard(const AllocGuard &) = delete;
    AllocGuard &operator=(const AllocGuard &) = delete;

    /** Heap allocations observed since this guard was constructed. */
    std::uint64_t allocations() const noexcept;

    /** Bytes requested by those allocations. */
    std::uint64_t bytes() const noexcept;

    /**
     * True when the replacement operator new/delete from this TU is
     * what the process runs (always true for binaries that link this
     * object file; provided so tests can assert the hook is live).
     */
    static bool hooked() noexcept;

  private:
    Mode _mode;
    std::uint64_t startAllocs;
    std::uint64_t startBytes;
};

} // namespace marlin::base

#endif // MARLIN_BASE_ALLOC_GUARD_HH
