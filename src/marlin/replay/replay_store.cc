#include "marlin/replay/replay_store.hh"

#include "marlin/replay/gather.hh"

namespace marlin::replay
{

void
ReplayStore::gatherAll(const IndexPlan &plan,
                       std::vector<AgentBatch> &out,
                       AccessTrace *trace) const
{
    const std::size_t n = numAgents();
    out.resize(n);
    for (std::size_t agent = 0; agent < n; ++agent)
        gatherAgent(agent, plan, out[agent], trace);
}

} // namespace marlin::replay
