#include "marlin/core/noise.hh"

#include <cmath>

#include "marlin/base/logging.hh"

namespace marlin::core
{

Real
EpsilonSchedule::value(std::size_t episode) const
{
    if (decayEpisodes == 0 || episode >= decayEpisodes)
        return _end;
    const Real frac = static_cast<Real>(episode) /
                      static_cast<Real>(decayEpisodes);
    return _start + (_end - _start) * frac;
}

OrnsteinUhlenbeckNoise::OrnsteinUhlenbeckNoise(std::size_t dim,
                                               Real theta_in,
                                               Real sigma_in,
                                               Real dt_in)
    : theta(theta_in), sigma(sigma_in), dt(dt_in), x(dim, Real(0))
{
}

const std::vector<Real> &
OrnsteinUhlenbeckNoise::step(Rng &rng)
{
    const Real sqrt_dt = std::sqrt(dt);
    for (Real &v : x) {
        v += theta * (Real(0) - v) * dt +
             sigma * sqrt_dt * static_cast<Real>(rng.gaussian());
    }
    return x;
}

void
OrnsteinUhlenbeckNoise::reset()
{
    std::fill(x.begin(), x.end(), Real(0));
}

void
OrnsteinUhlenbeckNoise::setState(std::vector<Real> state)
{
    MARLIN_ASSERT(state.size() == x.size(),
                  "OU noise state dimension mismatch");
    x = std::move(state);
}

} // namespace marlin::core
