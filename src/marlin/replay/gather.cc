#include "marlin/replay/gather.hh"

#include "marlin/numeric/kernels.hh"
#include "marlin/obs/metrics.hh"

namespace marlin::replay
{

void
AgentBatch::resize(std::size_t batch, const TransitionShape &shape)
{
    if (obs.rows() != batch || obs.cols() != shape.obsDim) {
        obs.resize(batch, shape.obsDim);
        nextObs.resize(batch, shape.obsDim);
        actions.resize(batch, shape.actDim);
        rewards.resize(batch, 1);
        dones.resize(batch, 1);
    }
}

void
gatherAgentBatch(const ReplayBuffer &buffer, const IndexPlan &plan,
                 AgentBatch &out, AccessTrace *trace)
{
    const TransitionShape &shape = buffer.shape();
    const std::size_t batch = plan.batchSize();
    out.resize(batch, shape);

    const std::size_t obs_bytes = shape.obsDim * sizeof(Real);
    const std::size_t act_bytes = shape.actDim * sizeof(Real);
    const numeric::kernels::KernelTable &kt =
        numeric::kernels::active();

    // One add per gather call, not per row: the gather loop is the
    // memory-bound path the paper characterizes, so the counters
    // must observe it without joining it.
    static obs::Counter &rows =
        obs::Registry::instance().counter("replay.gather.rows");
    static obs::Counter &bytes =
        obs::Registry::instance().counter("replay.gather.bytes");
    rows.add(batch);
    bytes.add(batch *
              (2 * obs_bytes + act_bytes + 2 * sizeof(Real)));

    for (std::size_t b = 0; b < batch; ++b) {
        const BufferIndex idx = plan.indices[b];
        MARLIN_ASSERT(idx < buffer.size(),
                      "gather index beyond valid transitions");
        const Real *src_obs = buffer.obsRow(idx);
        const Real *src_act = buffer.actRow(idx);
        const Real *src_next = buffer.nextObsRow(idx);

        kt.copy(src_obs, out.obs.row(b), shape.obsDim);
        kt.copy(src_act, out.actions.row(b), shape.actDim);
        out.rewards(b, 0) = buffer.rewardAt(idx);
        kt.copy(src_next, out.nextObs.row(b), shape.obsDim);
        out.dones(b, 0) = buffer.doneAt(idx);

        if (MARLIN_UNLIKELY(trace != nullptr)) {
            trace->record(src_obs, obs_bytes);
            trace->record(src_act, act_bytes);
            trace->record(src_next, obs_bytes);
        }
    }
}

void
gatherAllAgents(const MultiAgentBuffer &buffers, const IndexPlan &plan,
                std::vector<AgentBatch> &out, AccessTrace *trace)
{
    const std::size_t n = buffers.numAgents();
    out.resize(n);
    for (std::size_t agent = 0; agent < n; ++agent)
        gatherAgentBatch(buffers.agent(agent), plan, out[agent], trace);
}

} // namespace marlin::replay
