/**
 * @file
 * Property tests for the PER sum tree, including an exhaustive
 * comparison against a linear-scan oracle.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

#include "marlin/base/random.hh"
#include "marlin/replay/sum_tree.hh"

namespace marlin::replay
{
namespace
{

/** Linear-scan oracle for prefix-sum lookup. */
BufferIndex
oracleFind(const std::vector<double> &priorities, double prefix)
{
    double acc = 0;
    for (BufferIndex i = 0; i < priorities.size(); ++i) {
        acc += priorities[i];
        if (prefix < acc)
            return i;
    }
    return priorities.size() - 1;
}

TEST(SumTree, EmptyTotalsZero)
{
    SumTree tree(16);
    EXPECT_EQ(tree.total(), 0.0);
    EXPECT_EQ(tree.priorityOf(5), 0.0);
}

TEST(SumTree, SetUpdatesTotal)
{
    SumTree tree(8);
    tree.set(0, 1.0);
    tree.set(3, 2.5);
    EXPECT_NEAR(tree.total(), 3.5, 1e-12);
    tree.set(3, 0.5);
    EXPECT_NEAR(tree.total(), 1.5, 1e-12);
    EXPECT_NEAR(tree.priorityOf(3), 0.5, 1e-12);
}

TEST(SumTree, NonPowerOfTwoCapacity)
{
    SumTree tree(100);
    for (BufferIndex i = 0; i < 100; ++i)
        tree.set(i, 1.0);
    EXPECT_NEAR(tree.total(), 100.0, 1e-9);
    EXPECT_EQ(tree.find(99.5), 99u);
    EXPECT_EQ(tree.find(0.5), 0u);
}

TEST(SumTree, FindBoundaries)
{
    SumTree tree(4);
    tree.set(0, 1.0);
    tree.set(1, 2.0);
    tree.set(2, 3.0);
    tree.set(3, 4.0);
    EXPECT_EQ(tree.find(0.0), 0u);
    EXPECT_EQ(tree.find(0.999), 0u);
    EXPECT_EQ(tree.find(1.0), 1u);
    EXPECT_EQ(tree.find(2.999), 1u);
    EXPECT_EQ(tree.find(3.0), 2u);
    EXPECT_EQ(tree.find(5.999), 2u);
    EXPECT_EQ(tree.find(6.0), 3u);
    EXPECT_EQ(tree.find(9.999), 3u);
}

TEST(SumTree, SkipsZeroPriorityLeaves)
{
    SumTree tree(8);
    tree.set(2, 1.0);
    tree.set(6, 1.0);
    for (double p = 0.05; p < 2.0; p += 0.1) {
        const BufferIndex leaf = tree.find(p);
        EXPECT_TRUE(leaf == 2 || leaf == 6) << "prefix " << p;
    }
}

TEST(SumTree, MaxPriorityTracksUpdates)
{
    SumTree tree(8);
    EXPECT_EQ(tree.maxPriority(), 1.0); // Default before updates.
    tree.set(1, 5.0);
    EXPECT_EQ(tree.maxPriority(), 5.0);
    tree.set(2, 3.0);
    EXPECT_EQ(tree.maxPriority(), 5.0);
}

TEST(SumTree, MinPriorityIgnoresZeros)
{
    SumTree tree(8);
    EXPECT_EQ(tree.minPriority(), 0.0);
    tree.set(0, 4.0);
    tree.set(5, 0.25);
    EXPECT_EQ(tree.minPriority(), 0.25);
}

TEST(SumTree, ClearResets)
{
    SumTree tree(8);
    tree.set(0, 2.0);
    tree.clear();
    EXPECT_EQ(tree.total(), 0.0);
    EXPECT_EQ(tree.priorityOf(0), 0.0);
    EXPECT_EQ(tree.maxPriority(), 1.0);
}

class SumTreeOracle : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(SumTreeOracle, MatchesLinearScan)
{
    const std::size_t capacity = GetParam();
    SumTree tree(capacity);
    std::vector<double> priorities(capacity, 0.0);
    Rng rng(capacity * 31 + 7);

    // Randomized updates followed by randomized lookups, repeated.
    for (int round = 0; round < 20; ++round) {
        for (int u = 0; u < 16; ++u) {
            const BufferIndex idx = rng.randint(capacity);
            const double p = rng.uniform(0.0, 4.0);
            tree.set(idx, p);
            priorities[idx] = p;
        }
        const double total = std::accumulate(priorities.begin(),
                                             priorities.end(), 0.0);
        ASSERT_NEAR(tree.total(), total, 1e-9);
        if (total <= 0)
            continue;
        for (int q = 0; q < 32; ++q) {
            const double prefix = rng.uniform() * total * 0.999999;
            EXPECT_EQ(tree.find(prefix),
                      oracleFind(priorities, prefix))
                << "prefix " << prefix;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Capacities, SumTreeOracle,
                         ::testing::Values(1, 2, 3, 7, 8, 33, 100,
                                           256, 1000));

TEST(SumTree, StratifiedSamplingHitsAllPositiveLeaves)
{
    SumTree tree(32);
    for (BufferIndex i = 0; i < 32; ++i)
        tree.set(i, 1.0);
    std::set<BufferIndex> hit;
    const double segment = tree.total() / 64.0;
    for (int s = 0; s < 64; ++s)
        hit.insert(tree.find((s + 0.5) * segment));
    EXPECT_EQ(hit.size(), 32u);
}

} // namespace
} // namespace marlin::replay
