#include "marlin/core/evaluator.hh"

#include <algorithm>
#include <cmath>

#include "marlin/base/logging.hh"

namespace marlin::core
{

EvalResult
evaluate(env::Environment &environment, Trainer &trainer,
         std::size_t episodes, std::size_t episode_length)
{
    MARLIN_ASSERT(episodes > 0, "evaluate needs at least one episode");
    MARLIN_ASSERT(trainer.numAgents() == environment.numAgents(),
                  "trainer/environment agent count mismatch");

    EvalResult result;
    result.episodeReturns.reserve(episodes);
    const std::size_t n = environment.numAgents();
    result.perAgentMean.assign(n, Real(0));

    for (std::size_t e = 0; e < episodes; ++e) {
        auto obs = environment.reset();
        Real episode_return = 0;
        std::vector<Real> agent_return(n, Real(0));
        for (std::size_t t = 0; t < episode_length; ++t) {
            const auto actions = trainer.greedyActions(obs);
            auto step = environment.step(actions);
            for (std::size_t i = 0; i < n; ++i) {
                agent_return[i] += step.rewards[i];
                episode_return +=
                    step.rewards[i] / static_cast<Real>(n);
            }
            obs = std::move(step.observations);
        }
        result.episodeReturns.push_back(episode_return);
        for (std::size_t i = 0; i < n; ++i)
            result.perAgentMean[i] += agent_return[i];
    }

    for (Real &v : result.perAgentMean)
        v /= static_cast<Real>(episodes);

    double total = 0;
    result.min = result.episodeReturns.front();
    result.max = result.episodeReturns.front();
    for (Real r : result.episodeReturns) {
        total += r;
        result.min = std::min(result.min, r);
        result.max = std::max(result.max, r);
    }
    result.mean =
        static_cast<Real>(total / static_cast<double>(episodes));
    double var = 0;
    for (Real r : result.episodeReturns) {
        const double d = r - result.mean;
        var += d * d;
    }
    result.stddev = episodes > 1
                        ? static_cast<Real>(std::sqrt(
                              var / static_cast<double>(episodes - 1)))
                        : Real(0);
    return result;
}

} // namespace marlin::core
