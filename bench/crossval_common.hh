/**
 * @file
 * Shared machinery for the Figure 12/13 cross-validation benches.
 *
 * Both figures evaluate MADDPG predator-prey on an Intel i7-9700K
 * host; Figure 12 runs everything on the CPU, Figure 13 offloads
 * the network phases to a GTX 1070. Neither platform is available
 * here, so these benches are *fully simulated*: the mini-batch
 * sampling phase is the trace-driven i7 memory model fed with the
 * real samplers' address streams, and the network phases use either
 * a CPU-throughput model or the GTX 1070 device model with an
 * eager-framework dispatch overhead per op (the paper attributes
 * the GPU platform's weaker gains to exactly this per-op
 * transfer/launch pressure).
 */

#ifndef MARLIN_BENCH_CROSSVAL_COMMON_HH
#define MARLIN_BENCH_CROSSVAL_COMMON_HH

#include "hybrid_model.hh"

namespace marlin::bench
{

/** Sustained FP32 throughput of the 8-core i7-9700K (FLOP/s). */
inline constexpr double i7CpuFlops = 35e9;

/**
 * Eager-framework per-op dispatch overhead on the GPU path (s).
 * TF2 eager mode dispatches each small op through Python + the
 * CUDA driver; for the paper's tiny 64-unit networks this dominates
 * the GPU compute itself, which is why the paper finds the GPU
 * platform gains *less* from sampling optimizations (Section VI-B).
 */
inline constexpr double gpuOpOverhead = 200e-6;

/** Ops dispatched per trainer per update on the GPU path. */
inline constexpr double gpuOpsPerTrainer = 150.0;

/** Simulated sampling seconds per update on the i7 memory model. */
inline double
simulatedSamplingSeconds(Task task, std::size_t agents,
                         replay::Sampler &sampler,
                         BufferIndex capacity, int updates)
{
    auto shapes = taskShapes(task, agents);
    replay::MultiAgentBuffer buffers(shapes, capacity);
    Rng fill_rng(agents * 7 + 5);
    fillSynthetic(buffers, capacity, fill_rng);

    auto preset =
        memsim::makePlatform(memsim::PlatformId::CoreI7_9700K);
    memsim::CacheHierarchy hierarchy(preset.hierarchy);
    Rng rng(29);
    std::vector<replay::AgentBatch> batches;
    double seconds = 0;
    for (int u = 0; u < updates; ++u) {
        replay::AccessTrace trace;
        for (std::size_t t = 0; t < agents; ++t) {
            auto plan = sampler.plan(buffers.size(), 1024, rng);
            replay::gatherAllAgents(buffers, plan, batches, &trace);
        }
        seconds += memsim::replayTrace(hierarchy, trace,
                                       preset.frequencyHz)
                       .memorySeconds;
    }
    return seconds / updates;
}

/** Total network FLOPs per update across all trainers. */
inline double
nnFlopsPerUpdate(Task task, std::size_t agents)
{
    const auto dims = taskObsDims(task, agents);
    const std::size_t batch = 1024, hidden = 64, act = 5;
    std::size_t joint = agents * act;
    for (std::size_t d : dims)
        joint += d;
    double flops = 0;
    for (std::size_t i = 0; i < agents; ++i) {
        flops += targetQFlops(dims, act, batch, hidden, joint, false);
        flops += qpLossFlops(dims[i], act, batch, hidden, joint,
                             false);
    }
    return flops;
}

/** Bytes shipped to the device per update across all trainers. */
inline double
nnBytesPerUpdate(Task task, std::size_t agents)
{
    const auto dims = taskObsDims(task, agents);
    const std::size_t batch = 1024, act = 5;
    std::size_t joint = agents * act;
    for (std::size_t d : dims)
        joint += d;
    double bytes = 0;
    for (std::size_t i = 0; i < agents; ++i)
        bytes += 4.0 * batch * (2.0 * joint + dims[i]);
    return bytes;
}

/** Network seconds per update for the CPU-only platform. */
inline double
cpuNnSeconds(Task task, std::size_t agents)
{
    return nnFlopsPerUpdate(task, agents) / i7CpuFlops;
}

/** Network seconds per update for the CPU+GTX1070 platform. */
inline double
gpuNnSeconds(Task task, std::size_t agents)
{
    const auto gpu = memsim::makeGtx1070();
    return offloadSeconds(gpu, nnFlopsPerUpdate(task, agents),
                          nnBytesPerUpdate(task, agents),
                          4.0 * 1024 * agents) +
           agents * gpuOpsPerTrainer *
               (gpu.launchLatency + gpuOpOverhead);
}

/** One row of a Figure 12/13 style table. */
struct CrossvalRow
{
    double mbsBase = 0;     ///< Baseline sampling s/update.
    double mbsN16 = 0;      ///< n16r64 sampling s/update.
    double mbsN64 = 0;      ///< n64r16 sampling s/update.
    double nnSeconds = 0;   ///< Network s/update (platform).
};

inline CrossvalRow
crossvalRow(std::size_t agents, bool gpu, BufferIndex capacity)
{
    CrossvalRow row;
    replay::UniformSampler uniform;
    replay::LocalityAwareSampler n16({16, 64});
    replay::LocalityAwareSampler n64({64, 16});
    const int updates = agents >= 12 ? 1 : 2;
    row.mbsBase = simulatedSamplingSeconds(
        Task::PredatorPrey, agents, uniform, capacity, updates);
    row.mbsN16 = simulatedSamplingSeconds(
        Task::PredatorPrey, agents, n16, capacity, updates);
    row.mbsN64 = simulatedSamplingSeconds(
        Task::PredatorPrey, agents, n64, capacity, updates);
    row.nnSeconds = gpu ? gpuNnSeconds(Task::PredatorPrey, agents)
                        : cpuNnSeconds(Task::PredatorPrey, agents);
    return row;
}

/**
 * Print the MBS and total-time savings table for one platform.
 * Total time per update = sampling + network phases (the per-step
 * phases are platform-independent and small; Figure 12/13 percent
 * comparisons are over the update-dominated regime).
 */
inline void
printCrossval(const char *platform, bool gpu)
{
    std::printf("\nMADDPG predator-prey on %s\n", platform);
    std::printf("%-8s %11s %11s %11s %11s\n", "agents",
                "MBS16(%)", "TT16(%)", "MBS64(%)", "TT64(%)");
    const BufferIndex capacity = 1 << 15;
    for (std::size_t n : {3, 6, 12}) {
        auto row = crossvalRow(n, gpu, capacity);
        const double tt_base = row.mbsBase + row.nnSeconds;
        const double tt16 = row.mbsN16 + row.nnSeconds;
        const double tt64 = row.mbsN64 + row.nnSeconds;
        std::printf("%-8zu %11.1f %11.1f %11.1f %11.1f\n", n,
                    pctReduction(row.mbsBase, row.mbsN16),
                    pctReduction(tt_base, tt16),
                    pctReduction(row.mbsBase, row.mbsN64),
                    pctReduction(tt_base, tt64));
    }
}

} // namespace marlin::bench

#endif // MARLIN_BENCH_CROSSVAL_COMMON_HH
