#include "marlin/obs/telemetry.hh"

#include <cmath>
#include <cstdio>
#include <ctime>

#include "marlin/base/instant.hh"
#include "marlin/base/logging.hh"
#include "marlin/obs/metrics.hh"
#include "marlin/version.hh"

namespace marlin::obs
{

namespace
{

/** JSON has no NaN/Inf literals; non-finite values become null. */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
metricsJson()
{
    std::string out = "{";
    bool first = true;
    for (const MetricSample &s : Registry::instance().snapshot()) {
        if (!first)
            out += ",";
        first = false;
        out += "\"" + jsonEscape(s.name) + "\":{";
        switch (s.kind) {
        case MetricSample::Kind::Counter:
            out += "\"kind\":\"counter\",\"count\":" +
                   std::to_string(s.count);
            break;
        case MetricSample::Kind::Gauge:
            out += "\"kind\":\"gauge\",\"value\":" +
                   jsonNumber(s.value);
            break;
        case MetricSample::Kind::Histogram:
            out += "\"kind\":\"histogram\",\"count\":" +
                   std::to_string(s.count) +
                   ",\"sum\":" + jsonNumber(s.value) +
                   ",\"buckets\":[";
            for (std::size_t i = 0; i < s.buckets.size(); ++i) {
                if (i != 0)
                    out += ",";
                // Mirror Prometheus text format: the overflow
                // bucket's bound serializes as the string "+Inf".
                const double le = s.buckets[i].first;
                out += "[";
                out += std::isfinite(le) ? jsonNumber(le)
                                         : "\"+Inf\"";
                out += "," +
                       std::to_string(s.buckets[i].second) + "]";
            }
            out += "]";
            break;
        }
        out += "}";
    }
    out += "}";
    return out;
}

} // namespace

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

TelemetryWriter::TelemetryWriter(
    const std::string &path,
    const std::vector<std::pair<std::string, std::string>> &meta)
{
    file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
        warn("telemetry: cannot open '%s' for writing; telemetry "
             "disabled for this run",
             path.c_str());
        return;
    }

    std::string line = "{\"record\":\"header\",\"schema\":" +
                       std::to_string(telemetrySchemaVersion) +
                       ",\"commit\":\"" + jsonEscape(gitCommit) +
                       "\",\"unix_time\":" +
                       std::to_string(static_cast<long long>(
                           std::time(nullptr))) +
                       ",\"meta\":{";
    bool first = true;
    for (const auto &[k, v] : meta) {
        if (!first)
            line += ",";
        first = false;
        line += "\"" + jsonEscape(k) + "\":\"" + jsonEscape(v) +
                "\"";
    }
    line += "}}";
    writeLine(line);
}

TelemetryWriter::~TelemetryWriter()
{
    if (file != nullptr)
        std::fclose(file);
}

void
TelemetryWriter::writeStep(const StepRecord &rec)
{
    if (file == nullptr)
        return;
    std::string line =
        "{\"record\":\"step\",\"t\":" +
        jsonNumber(static_cast<double>(base::nowNsSinceStart()) /
                   1e9) +
        ",\"episode\":" + std::to_string(rec.episode) +
        ",\"env_step\":" + std::to_string(rec.envStep) +
        ",\"update_calls\":" + std::to_string(rec.updateCalls) +
        ",\"phase_ns\":{";
    for (std::size_t i = 0; i < rec.phaseNs.size(); ++i) {
        if (i != 0)
            line += ",";
        line += "\"" + jsonEscape(rec.phaseNs[i].first) +
                "\":" + std::to_string(rec.phaseNs[i].second);
    }
    line += "}";
    if (rec.haveLosses) {
        line += ",\"critic_loss\":" + jsonNumber(rec.criticLoss) +
                ",\"actor_loss\":" + jsonNumber(rec.actorLoss) +
                ",\"mean_abs_td\":" + jsonNumber(rec.meanAbsTd) +
                ",\"critic_grad_norm\":" +
                jsonNumber(rec.criticGradNorm) +
                ",\"actor_grad_norm\":" +
                jsonNumber(rec.actorGradNorm);
    }
    if (rec.haveRing) {
        line += ",\"ring_depth\":" + std::to_string(rec.ringDepth) +
                ",\"ring_dropped\":" +
                std::to_string(rec.ringDropped) +
                ",\"ring_seq_gaps\":" +
                std::to_string(rec.ringSeqGaps);
    }
    if (rec.haveSupervisor) {
        line += ",\"sup_restarts\":" +
                std::to_string(rec.supRestarts) +
                ",\"sup_degradations\":" +
                std::to_string(rec.supDegradations) +
                ",\"sup_watchdog_trips\":" +
                std::to_string(rec.supWatchdogTrips) +
                ",\"sup_quarantined\":" +
                std::to_string(rec.supQuarantined);
    }
    if (rec.haveAsyncLatency) {
        line += ",\"transit_p50_us\":" +
                jsonNumber(rec.transitP50Us) +
                ",\"transit_p99_us\":" +
                jsonNumber(rec.transitP99Us) +
                ",\"policy_staleness\":" +
                std::to_string(rec.policyStaleness);
    }
    line += ",\"metrics\":" + metricsJson() + "}";
    writeLine(line);
}

void
TelemetryWriter::writeSummary(
    const std::vector<std::pair<std::string, double>> &results)
{
    if (file == nullptr)
        return;
    std::string line =
        "{\"record\":\"summary\",\"t\":" +
        jsonNumber(static_cast<double>(base::nowNsSinceStart()) /
                   1e9) +
        ",\"results\":{";
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i != 0)
            line += ",";
        line += "\"" + jsonEscape(results[i].first) +
                "\":" + jsonNumber(results[i].second);
    }
    line += "},\"metrics\":" + metricsJson() + "}";
    writeLine(line);
}

void
TelemetryWriter::writeLine(const std::string &line)
{
    std::fwrite(line.data(), 1, line.size(), file);
    std::fputc('\n', file);
    // One flush per record bounds crash loss to the current line.
    std::fflush(file);
    ++records;
}

} // namespace marlin::obs
