#!/usr/bin/env python3
"""Inspect MARLin cold-tier replay segment files (*.mrcs).

Each segment file written by replay::MmapColdTier starts with a 4 KiB
preamble whose first 64 bytes are the CRC-guarded ColdSegmentHeader
(see src/marlin/replay/cold_tier.hh):

    u32  magic          "MRCS" little-endian (0x5343524D)
    u32  version        1
    u64  strideScalars  Reals per record
    u64  segmentSlots   record capacity of this file
    u64  firstSlot      first shard-local slot held
    u32  shardIndex
    u32  shardCount
    u64  records        cumulative spill writes applied
    u8   reserved[12]
    u32  crc            IEEE CRC-32 over the preceding 60 bytes

The guard CRC uses the same polynomial (0xEDB88320) as the checkpoint
section footers, which is exactly Python's zlib.crc32 — so this tool
can verify segment integrity with no dependency on the C++ build.

Usage: replay_inspect.py SEGMENT.mrcs [SEGMENT.mrcs ...]

Prints one JSON object per file on stdout. Exits non-zero if any file
is unreadable, has a bad magic/version, or fails the CRC check.
"""

import json
import os
import struct
import sys
import zlib

MAGIC = 0x5343524D  # "MRCS" little-endian.
VERSION = 1
HEADER_BYTES = 64
# Layout of ColdSegmentHeader; 12x covers the reserved bytes.
HEADER_STRUCT = struct.Struct("<IIQQQIIQ12xI")


def fail(msg: str) -> None:
    print(f"replay_inspect: {msg}", file=sys.stderr)
    sys.exit(1)


def inspect(path: str) -> dict:
    try:
        with open(path, "rb") as f:
            raw = f.read(HEADER_BYTES)
        apparent = os.path.getsize(path)
        # Sparse files: blocks actually allocated on disk.
        allocated = os.stat(path).st_blocks * 512
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    if len(raw) < HEADER_BYTES:
        fail(f"{path}: truncated header ({len(raw)} bytes)")

    (
        magic,
        version,
        stride_scalars,
        segment_slots,
        first_slot,
        shard_index,
        shard_count,
        records,
        crc_stored,
    ) = HEADER_STRUCT.unpack(raw)

    if magic != MAGIC:
        fail(f"{path}: bad magic {magic:#010x} (want {MAGIC:#010x})")
    if version != VERSION:
        fail(f"{path}: unsupported version {version}")
    crc_computed = zlib.crc32(raw[: HEADER_BYTES - 4]) & 0xFFFFFFFF
    crc_ok = crc_computed == crc_stored
    info = {
        "file": path,
        "magic": "MRCS",
        "version": version,
        "stride_scalars": stride_scalars,
        "segment_slots": segment_slots,
        "first_slot": first_slot,
        "shard_index": shard_index,
        "shard_count": shard_count,
        "records": records,
        "crc_stored": f"{crc_stored:#010x}",
        "crc_computed": f"{crc_computed:#010x}",
        "crc_ok": crc_ok,
        "apparent_bytes": apparent,
        "allocated_bytes": allocated,
    }
    print(json.dumps(info))
    if not crc_ok:
        fail(f"{path}: header CRC mismatch")
    return info


def main() -> None:
    if len(sys.argv) < 2:
        fail("usage: replay_inspect.py SEGMENT.mrcs [...]")
    for path in sys.argv[1:]:
        inspect(path)


if __name__ == "__main__":
    main()
