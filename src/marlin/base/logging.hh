/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic()  — an internal invariant was violated (a MARLin bug);
 *            aborts so a debugger/core dump can capture state.
 * fatal()  — the simulation cannot continue due to a user error
 *            (bad configuration, invalid arguments); exits cleanly.
 * warn()   — something works but not as well as it should.
 * inform() — normal operating status messages.
 */

#ifndef MARLIN_BASE_LOGGING_HH
#define MARLIN_BASE_LOGGING_HH

#include <string>

#include "marlin/base/compiler.hh"

namespace marlin
{

/** Verbosity control: messages below this level are suppressed. */
enum class LogLevel { Silent = 0, Fatal, Warn, Inform, Debug };

/** Set the global log threshold (default: Inform). */
void setLogLevel(LogLevel level);

/** Current global log threshold. */
LogLevel logLevel();

/**
 * Parse a --log-level value ("silent", "fatal", "warn", "inform",
 * "debug"); fatal on anything else.
 */
LogLevel parseLogLevel(const std::string &name);

/** Name of @p level, inverse of parseLogLevel. */
const char *logLevelName(LogLevel level);

[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Check an internal invariant; panics with location info on failure.
 * Active in all build types (unlike assert).
 */
#define MARLIN_ASSERT(cond, msg)                                          \
    do {                                                                  \
        if (MARLIN_UNLIKELY(!(cond))) {                                   \
            ::marlin::panic("assertion '%s' failed at %s:%d: %s", #cond,  \
                            __FILE__, __LINE__, msg);                     \
        }                                                                 \
    } while (0)

} // namespace marlin

#endif // MARLIN_BASE_LOGGING_HH
