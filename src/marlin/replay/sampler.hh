/**
 * @file
 * Sampler strategy interface.
 *
 * A Sampler produces the *index plan* for one update — the common
 * indices array of the paper's Figure 5 that every agent trainer
 * uses to gather mini-batches from all agents' replay buffers. The
 * gather itself is shared code (gather.hh), so the strategies differ
 * exactly where the paper's optimizations differ: in the index
 * pattern and the importance weights.
 */

#ifndef MARLIN_REPLAY_SAMPLER_HH
#define MARLIN_REPLAY_SAMPLER_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "marlin/base/random.hh"
#include "marlin/base/types.hh"

namespace marlin::replay
{

/**
 * The indices (and optional importance weights) for one mini-batch.
 */
struct IndexPlan
{
    /** Buffer slots to gather, one per batch row. */
    std::vector<BufferIndex> indices;
    /**
     * Importance-sampling weights per batch row (Lemma 1), already
     * normalized to max 1. Empty means uniform weight 1.
     */
    std::vector<Real> weights;
    /**
     * For prioritized samplers: the identity of the priority node
     * backing each row, so TD errors can be written back. Empty for
     * unprioritized samplers.
     */
    std::vector<BufferIndex> priorityIds;

    std::size_t batchSize() const { return indices.size(); }

    /** Empty all three arrays, retaining their capacity. */
    void
    clear()
    {
        indices.clear();
        weights.clear();
        priorityIds.clear();
    }
};

/** Strategy interface for mini-batch index selection. */
class Sampler
{
  public:
    virtual ~Sampler() = default;

    /** Short identifier used in reports ("uniform", "locality"...). */
    virtual std::string name() const = 0;

    /**
     * Build the index plan for one update into caller-owned storage.
     * @p out's arrays are overwritten (capacity-retaining), so a
     * trainer reusing the same IndexPlan every update performs no
     * heap allocations once warm.
     *
     * @param buffer_size Current valid transition count.
     * @param batch Rows to produce (the paper uses 1024).
     * @param rng Random stream.
     * @param out Receives the plan.
     */
    virtual void planInto(BufferIndex buffer_size, std::size_t batch,
                          Rng &rng, IndexPlan &out) = 0;

    /** Convenience wrapper returning the plan by value. */
    IndexPlan
    plan(BufferIndex buffer_size, std::size_t batch, Rng &rng)
    {
        IndexPlan out;
        planInto(buffer_size, batch, rng, out);
        return out;
    }

    /**
     * Hint the eventual buffer capacity so internal per-transition
     * state (rank tables, cumulative arrays...) can preallocate and
     * stop growing — and therefore stop reallocating — while the
     * replay buffer fills during steady-state training.
     */
    virtual void reserve(BufferIndex capacity) { (void)capacity; }

    /**
     * Notification that a transition was appended at @p idx
     * (prioritized samplers give it max priority).
     */
    virtual void onAdd(BufferIndex idx) {}

    /**
     * Write back fresh TD errors for the rows of the last plan.
     * No-op for unprioritized samplers.
     */
    virtual void
    updatePriorities(const std::vector<BufferIndex> &priority_ids,
                     const std::vector<Real> &td_errors)
    {
    }

    /**
     * Serialize all mutable sampler state (priority trees, anneal
     * counters...) so a resumed run replans bit-identically.
     * Stateless samplers write nothing.
     */
    virtual void saveState(std::ostream &os) const { (void)os; }

    /** Restore state written by saveState() on a matching sampler. */
    virtual void loadState(std::istream &is) { (void)is; }
};

} // namespace marlin::replay

#endif // MARLIN_REPLAY_SAMPLER_HH
