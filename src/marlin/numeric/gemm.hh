/**
 * @file
 * Cache-blocked general matrix multiply kernels.
 *
 * These four variants cover every product the NN substrate needs
 * without materializing transposes:
 *   gemm      : C  = A   * B      (forward pass)
 *   gemmTN    : C  = A^T * B      (weight gradients)
 *   gemmNT    : C  = A   * B^T    (input gradients)
 *   gemmAcc   : C += A   * B      (accumulating forward)
 */

#ifndef MARLIN_NUMERIC_GEMM_HH
#define MARLIN_NUMERIC_GEMM_HH

#include "marlin/numeric/matrix.hh"

namespace marlin::numeric
{

/** C = A * B. Shapes: A(m,k), B(k,n) -> C(m,n). */
void gemm(const Matrix &a, const Matrix &b, Matrix &c);

/** C += A * B. */
void gemmAcc(const Matrix &a, const Matrix &b, Matrix &c);

/** C = A^T * B. Shapes: A(k,m), B(k,n) -> C(m,n). */
void gemmTN(const Matrix &a, const Matrix &b, Matrix &c);

/** C = A * B^T. Shapes: A(m,k), B(n,k) -> C(m,n). */
void gemmNT(const Matrix &a, const Matrix &b, Matrix &c);

} // namespace marlin::numeric

#endif // MARLIN_NUMERIC_GEMM_HH
