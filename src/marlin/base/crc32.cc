#include "marlin/base/crc32.hh"

#include <array>

namespace marlin
{

namespace
{

/** Build the 256-entry table for the reflected IEEE polynomial. */
constexpr std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

constexpr std::array<std::uint32_t, 256> crcTable = makeTable();

} // namespace

std::uint32_t
crc32(std::uint32_t crc, const void *data, std::size_t len)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    crc = ~crc;
    for (std::size_t i = 0; i < len; ++i)
        crc = crcTable[(crc ^ bytes[i]) & 0xffu] ^ (crc >> 8);
    return ~crc;
}

} // namespace marlin
