/**
 * @file
 * Physical Deception (mixed cooperative/competitive), modeled on
 * MPE simple_adversary: N good agents must cover the goal landmark
 * while deceiving one adversary that does not know which landmark
 * is the goal. Included as the third task class (the paper's
 * Section II-B motivates cooperative, competitive and *mixed*
 * particle tasks).
 */

#ifndef MARLIN_ENV_PHYSICAL_DECEPTION_HH
#define MARLIN_ENV_PHYSICAL_DECEPTION_HH

#include "marlin/env/scenario.hh"

namespace marlin::env
{

/** Roster parameters for PhysicalDeceptionScenario. */
struct PhysicalDeceptionConfig
{
    /** Cooperating (good) agents; the adversary is extra. */
    std::size_t numGoodAgents = 2;
    /** Landmarks; 0 = one per good agent. */
    std::size_t numLandmarks = 0;
};

/**
 * Mixed task: agent 0 is the adversary, agents 1..N are the good
 * team. All agents are learnable. The good team shares a reward of
 * (adversary distance to goal) - (closest good agent distance to
 * goal); the adversary's reward is the negated distance term.
 */
class PhysicalDeceptionScenario : public Scenario
{
  public:
    explicit PhysicalDeceptionScenario(
        PhysicalDeceptionConfig config = {});

    std::string name() const override { return "physical_deception"; }

    void makeWorld(World &world) override;
    void resetWorld(World &world, Rng &rng) override;
    std::size_t learnableAgents(const World &world) const override;
    void observationInto(const World &world, std::size_t i,
                         Real *out) const override;
    std::size_t observationDim(std::size_t i) const override;
    Real reward(const World &world, std::size_t i) const override;

    const PhysicalDeceptionConfig &config() const { return _config; }
    std::size_t goalIndex() const { return goal; }

  private:
    PhysicalDeceptionConfig _config;
    std::size_t goal = 0; ///< Which landmark is the true goal.
};

} // namespace marlin::env

#endif // MARLIN_ENV_PHYSICAL_DECEPTION_HH
