#include "marlin/serve/reload.hh"

#include <sys/stat.h>

#include "marlin/base/logging.hh"

namespace marlin::serve
{

CheckpointReloader::CheckpointReloader(
    std::string dir_in, core::CtdeTrainerBase &trainer_in,
    ServePolicy &policy_in)
    : dir(std::move(dir_in)), trainer(trainer_in),
      policy(policy_in)
{
}

bool
CheckpointReloader::statLatest(FileIdentity &out) const
{
    struct stat st{};
    if (::stat(core::latestCheckpointPath(dir).c_str(), &st) != 0)
        return false;
    out.mtimeSec = st.st_mtim.tv_sec;
    out.mtimeNsec = st.st_mtim.tv_nsec;
    out.size = static_cast<std::uint64_t>(st.st_size);
    out.inode = static_cast<std::uint64_t>(st.st_ino);
    return true;
}

core::CkptResult
CheckpointReloader::loadNow()
{
    core::RunState state;
    state.trainer = &trainer;
    const core::CkptResult result = core::resumeLatest(dir, state);
    if (result) {
        statLatest(loadedIdentity);
        policy.adoptFrom(trainer);
    }
    return result;
}

bool
CheckpointReloader::maybeReload(bool forced)
{
    if (!forced) {
        FileIdentity current;
        if (!statLatest(current) || current == loadedIdentity)
            return false;
    }
    core::RunState state;
    state.trainer = &trainer;
    const core::CkptResult result = core::resumeLatest(dir, state);
    if (!result) {
        // Keep serving the weights we have: a torn rotation or a
        // checkpoint mid-write will succeed on a later attempt.
        warn("serve: reload from '%s' failed (%s: %s); keeping "
             "current weights",
             dir.c_str(), core::ckptErrorName(result.error),
             result.detail.c_str());
        return false;
    }
    statLatest(loadedIdentity);
    policy.adoptFrom(trainer);
    ++count;
    return true;
}

} // namespace marlin::serve
