#include "marlin/replay/prioritized_sampler.hh"

#include <algorithm>
#include <cmath>

#include "marlin/base/logging.hh"
#include "marlin/base/serialize.hh"
#include "marlin/obs/metrics.hh"

namespace marlin::replay
{

PrioritizedSampler::PrioritizedSampler(PerConfig config)
    : _config(config), _tree(config.capacity), beta(config.beta)
{
}

void
PrioritizedSampler::onAdd(BufferIndex idx)
{
    // New transitions enter at max priority so each is replayed at
    // least once before its TD error takes over.
    _tree.set(idx % _config.capacity, _tree.maxPriority());
}

void
PrioritizedSampler::planInto(BufferIndex buffer_size,
                             std::size_t batch, Rng &rng,
                             IndexPlan &out)
{
    MARLIN_ASSERT(buffer_size > 0, "sampling from an empty buffer");
    MARLIN_ASSERT(_tree.total() > 0.0,
                  "PER plan before any onAdd/updatePriorities");
    static obs::Counter &plans =
        obs::Registry::instance().counter("replay.per.plans");
    plans.add();
    out.indices.resize(batch);
    out.weights.resize(batch);
    out.priorityIds.resize(batch);

    const double total = _tree.total();
    const double segment = total / static_cast<double>(batch);
    const double n = static_cast<double>(buffer_size);

    double max_w = 0.0;
    std::vector<double> &raw = rawWeights;
    raw.resize(batch);
    for (std::size_t b = 0; b < batch; ++b) {
        // Stratified draw within segment b.
        const double prefix =
            (static_cast<double>(b) + rng.uniform()) * segment;
        const BufferIndex leaf =
            _tree.find(std::min(prefix, total * (1.0 - 1e-12)));
        const double p = _tree.priorityOf(leaf) / total;
        // Lemma 1: w_i = (1/N * 1/P(i))^beta.
        const double w =
            std::pow(1.0 / (n * std::max(p, 1e-12)),
                     static_cast<double>(beta));
        out.indices[b] = leaf;
        out.priorityIds[b] = leaf;
        raw[b] = w;
        max_w = std::max(max_w, w);
    }
    const double inv = max_w > 0.0 ? 1.0 / max_w : 1.0;
    for (std::size_t b = 0; b < batch; ++b)
        out.weights[b] = static_cast<Real>(raw[b] * inv);

    if (_config.betaAnneal > Real(0))
        beta = std::min(Real(1), beta + _config.betaAnneal);
}

void
PrioritizedSampler::updatePriorities(
    const std::vector<BufferIndex> &priority_ids,
    const std::vector<Real> &td_errors)
{
    MARLIN_ASSERT(priority_ids.size() == td_errors.size(),
                  "priority update size mismatch");
    static obs::Counter &updates =
        obs::Registry::instance().counter(
            "replay.per.priority_updates");
    updates.add(priority_ids.size());
    for (std::size_t i = 0; i < priority_ids.size(); ++i) {
        const double p =
            std::pow(std::abs(static_cast<double>(td_errors[i])) +
                         static_cast<double>(_config.epsilon),
                     static_cast<double>(_config.alpha));
        _tree.set(priority_ids[i] % _config.capacity, p);
    }
}

void
PrioritizedSampler::saveState(std::ostream &os) const
{
    writePod<Real>(os, beta);
    _tree.saveState(os);
}

void
PrioritizedSampler::loadState(std::istream &is)
{
    beta = readPod<Real>(is);
    _tree.loadState(is);
}

} // namespace marlin::replay
