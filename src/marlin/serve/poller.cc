#include "marlin/serve/poller.hh"

#include <cerrno>
#include <cstring>

#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include "marlin/base/logging.hh"

namespace marlin::serve
{

bool
pollerKindFromString(const std::string &name, PollerKind &out)
{
    if (name == "auto") {
        out = PollerKind::Auto;
        return true;
    }
    if (name == "epoll") {
        out = PollerKind::Epoll;
        return true;
    }
    if (name == "poll") {
        out = PollerKind::Poll;
        return true;
    }
    return false;
}

Poller::Poller(PollerKind kind)
{
#ifdef __linux__
    useEpoll = kind != PollerKind::Poll;
    if (useEpoll) {
        epollFd = ::epoll_create1(0);
        if (epollFd < 0) {
            warn("epoll_create1 failed (%s); falling back to poll",
                 std::strerror(errno));
            useEpoll = false;
        }
    }
#else
    if (kind == PollerKind::Epoll)
        fatal("epoll poller requested on a non-Linux platform");
    useEpoll = false;
#endif
    (void)kind;
}

Poller::~Poller()
{
    if (epollFd >= 0)
        ::close(epollFd);
}

const char *
Poller::backendName() const
{
    return useEpoll ? "epoll" : "poll";
}

void
Poller::add(int fd)
{
    interest[fd] = false;
#ifdef __linux__
    if (useEpoll) {
        struct epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        if (::epoll_ctl(epollFd, EPOLL_CTL_ADD, fd, &ev) != 0)
            warn("epoll_ctl add fd %d: %s", fd,
                 std::strerror(errno));
    }
#endif
}

void
Poller::setWriteInterest(int fd, bool on)
{
    auto it = interest.find(fd);
    if (it == interest.end() || it->second == on)
        return;
    it->second = on;
#ifdef __linux__
    if (useEpoll) {
        struct epoll_event ev{};
        ev.events = EPOLLIN | (on ? EPOLLOUT : 0u);
        ev.data.fd = fd;
        if (::epoll_ctl(epollFd, EPOLL_CTL_MOD, fd, &ev) != 0)
            warn("epoll_ctl mod fd %d: %s", fd,
                 std::strerror(errno));
    }
#endif
}

void
Poller::remove(int fd)
{
    interest.erase(fd);
#ifdef __linux__
    if (useEpoll) {
        // Ignore failures: the fd may already be gone.
        ::epoll_ctl(epollFd, EPOLL_CTL_DEL, fd, nullptr);
    }
#endif
}

std::size_t
Poller::wait(std::vector<PollEvent> &out, int timeout_ms)
{
    out.clear();
#ifdef __linux__
    if (useEpoll) {
        struct epoll_event events[64];
        const int n =
            ::epoll_wait(epollFd, events, 64, timeout_ms);
        if (n < 0) {
            if (errno != EINTR)
                warn("epoll_wait: %s", std::strerror(errno));
            return 0;
        }
        for (int i = 0; i < n; ++i) {
            PollEvent ev;
            ev.fd = events[i].data.fd;
            ev.readable = (events[i].events & EPOLLIN) != 0;
            ev.writable = (events[i].events & EPOLLOUT) != 0;
            ev.closed =
                (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
            out.push_back(ev);
        }
        return out.size();
    }
#endif
    pollScratch.clear();
    for (const auto &[fd, want_write] : interest) {
        struct pollfd p{};
        p.fd = fd;
        p.events =
            static_cast<short>(POLLIN | (want_write ? POLLOUT : 0));
        pollScratch.push_back(p);
    }
    const int n =
        ::poll(pollScratch.data(),
               static_cast<nfds_t>(pollScratch.size()), timeout_ms);
    if (n < 0) {
        if (errno != EINTR)
            warn("poll: %s", std::strerror(errno));
        return 0;
    }
    for (const struct pollfd &p : pollScratch) {
        if (p.revents == 0)
            continue;
        PollEvent ev;
        ev.fd = p.fd;
        ev.readable = (p.revents & POLLIN) != 0;
        ev.writable = (p.revents & POLLOUT) != 0;
        ev.closed = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
        out.push_back(ev);
    }
    return out.size();
}

} // namespace marlin::serve
