#include "marlin/core/train_loop.hh"

#include "marlin/base/logging.hh"

namespace marlin::core
{

using profile::Phase;
using profile::ScopedPhase;

namespace
{

std::vector<replay::TransitionShape>
shapesFor(const env::Environment &environment,
          const TrainConfig &config)
{
    // Continuous control stores the 2D force instead of a one-hot.
    const std::size_t act_dim =
        config.actionMode == ActionMode::Continuous
            ? 2
            : environment.actionDim();
    std::vector<replay::TransitionShape> shapes;
    shapes.reserve(environment.numAgents());
    for (std::size_t i = 0; i < environment.numAgents(); ++i)
        shapes.push_back({environment.obsDim(i), act_dim});
    return shapes;
}

} // namespace

TrainLoop::TrainLoop(env::Environment &environment_in,
                     Trainer &trainer_in, TrainConfig config_in)
    : environment(environment_in), trainer(trainer_in),
      config(std::move(config_in)),
      buffers(shapesFor(environment_in, config), config.bufferCapacity)
{
    MARLIN_ASSERT(trainer.numAgents() == environment.numAgents(),
                  "trainer/environment agent count mismatch");
    if (config.backend == SamplingBackend::Interleaved) {
        store = std::make_unique<replay::InterleavedReplayStore>(
            shapesFor(environment, config), config.bufferCapacity);
    }
}

std::vector<Real>
TrainLoop::oneHotAction(int action) const
{
    std::vector<Real> onehot(environment.actionDim(), Real(0));
    onehot[static_cast<std::size_t>(action)] = Real(1);
    return onehot;
}

TrainResult
TrainLoop::run(std::size_t episodes, const EpisodeCallback &callback)
{
    TrainResult result;
    result.episodeRewards.reserve(episodes);
    const std::size_t n = environment.numAgents();

    for (std::size_t episode = 0; episode < episodes; ++episode) {
        std::vector<std::vector<Real>> obs = environment.reset();
        Real episode_reward = 0;

        for (std::size_t t = 0; t < config.maxEpisodeLength; ++t) {
            const bool continuous =
                config.actionMode == ActionMode::Continuous;
            std::vector<int> actions;
            std::vector<std::array<Real, 2>> forces;
            {
                ScopedPhase sp(result.timer, Phase::ActionSelection);
                if (continuous) {
                    forces = trainer.selectContinuousActions(obs,
                                                             episode);
                } else {
                    actions = trainer.selectActions(obs, episode);
                }
            }

            env::StepResult step;
            {
                ScopedPhase sp(result.timer, Phase::EnvStep);
                if (continuous) {
                    std::vector<env::Vec2> vec_forces(n);
                    for (std::size_t i = 0; i < n; ++i)
                        vec_forces[i] = {forces[i][0], forces[i][1]};
                    step = environment.stepContinuous(vec_forces);
                } else {
                    step = environment.step(actions);
                }
            }
            ++result.envSteps;

            std::vector<std::vector<Real>> onehots(n);
            for (std::size_t i = 0; i < n; ++i) {
                if (continuous) {
                    onehots[i] = {forces[i][0], forces[i][1]};
                } else {
                    onehots[i] = oneHotAction(actions[i]);
                }
            }
            {
                ScopedPhase sp(result.timer, Phase::BufferAdd);
                const BufferIndex slot = buffers.agent(0).position();
                buffers.add(obs, onehots, step.rewards,
                            step.observations, step.dones);
                trainer.onTransitionAdded(slot);
            }
            if (store) {
                ScopedPhase reorg(result.timer, Phase::LayoutReorg);
                store->append(obs, onehots, step.rewards,
                              step.observations, step.dones);
            }
            ++insertionsSinceUpdate;

            for (Real r : step.rewards)
                episode_reward += r / static_cast<Real>(n);
            obs = std::move(step.observations);

            const bool warm =
                buffers.size() >= config.warmupTransitions &&
                buffers.size() >=
                    static_cast<BufferIndex>(config.batchSize);
            if (warm && insertionsSinceUpdate >= config.updateEvery) {
                insertionsSinceUpdate = 0;
                trainer.update(buffers, store.get(), result.timer);
                ++result.updateCalls;
            }
        }

        result.episodeRewards.push_back(episode_reward);
        if (callback)
            callback({episode, episode_reward, 0});
    }

    // Final score: mean over the last 10% (at least one episode).
    const std::size_t tail =
        std::max<std::size_t>(1, episodes / 10);
    Real total = 0;
    for (std::size_t e = episodes - tail; e < episodes; ++e)
        total += result.episodeRewards[e];
    result.finalScore = episodes ? total / static_cast<Real>(tail)
                                 : Real(0);
    return result;
}

} // namespace marlin::core
