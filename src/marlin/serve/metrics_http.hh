/**
 * @file
 * Minimal HTTP/1.0 metrics endpoint: `GET /metrics` answers with the
 * Prometheus text rendering of the obs registry, `GET /healthz` with
 * "ok". Built on the same serve::Poller readiness backend as the
 * policy server (epoll on Linux, poll(2) fallback), non-blocking
 * end to end, one response per connection (Connection: close).
 *
 * Two service modes, chosen by the mount point:
 *
 *  - serviceOnce(): one poll turn, driven by a thread the caller
 *    already owns. The async training CLI hooks this into the
 *    supervisor's watchdog tick, so scrapes are served without
 *    adding a thread and — critically — without touching the actor
 *    or learner hot paths: rendering allocates, and the zero-alloc
 *    steady-state contract only covers the hot threads.
 *  - startThread(): a dedicated background service loop, for
 *    processes without a convenient idle thread (marlin_serve's
 *    event loop must not stall on a scrape render; the lockstep
 *    trainer has no watchdog).
 *
 * Malformed requests get a 400 and poison only their own
 * connection; the listener and every other connection stay live
 * (same isolation contract as the policy server's framing errors).
 */

#ifndef MARLIN_SERVE_METRICS_HTTP_HH
#define MARLIN_SERVE_METRICS_HTTP_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "marlin/obs/metrics.hh"
#include "marlin/serve/poller.hh"

namespace marlin::serve
{

/** Endpoint knobs, fixed for the run. */
struct MetricsHttpConfig
{
    /** TCP port; 0 binds an ephemeral port (see port()). */
    std::uint16_t port = 0;
    PollerKind poller = PollerKind::Auto;
    /** Request-header cap; longer requests answer 400. */
    std::size_t maxRequestBytes = 4096;
    /** Listen backlog; scrapers are few. */
    int backlog = 16;
};

/** The /metrics + /healthz HTTP endpoint. */
class MetricsHttp
{
  public:
    explicit MetricsHttp(MetricsHttpConfig config = {});
    ~MetricsHttp();

    MetricsHttp(const MetricsHttp &) = delete;
    MetricsHttp &operator=(const MetricsHttp &) = delete;

    /** Bind + listen. False (with a warning) on failure. */
    bool start();

    /** Port actually bound (resolves port 0). */
    std::uint16_t port() const { return boundPort; }

    /**
     * One service turn: wait up to @p timeout_ms for readiness,
     * then accept / read / respond / flush whatever is ready.
     * Call from exactly one thread at a time.
     */
    void serviceOnce(int timeout_ms = 0);

    /** Spawn a background loop of serviceOnce(50). */
    void startThread();

    /** Stop the background loop (if any) and close every fd. */
    void stop();

    /** Successful /metrics scrapes served. */
    std::uint64_t
    scrapesServed() const noexcept
    {
        return scrapes.load(std::memory_order_relaxed);
    }

  private:
    struct Conn
    {
        int fd = -1;
        std::string in;      ///< Bytes read so far.
        std::string out;     ///< Response being flushed.
        std::size_t outOff = 0;
        bool responding = false;
    };

    void acceptClients();
    void handleReadable(Conn &conn);
    /** Build conn.out from the request line in conn.in. */
    void buildResponse(Conn &conn);
    /** Write pending output; closes when fully flushed. */
    void flushOutput(Conn &conn);
    void closeConn(int fd);

    MetricsHttpConfig config;
    Poller poller;
    int listenFd = -1;
    std::uint16_t boundPort = 0;
    std::map<int, Conn> conns;
    std::vector<PollEvent> events;

    std::atomic<std::uint64_t> scrapes{0};

    std::thread thread;
    std::atomic<bool> stopFlag{false};

    // Obs registry handles, resolved once at construction.
    obs::Counter &scrapeCounter;
    obs::Counter &errorCounter;
};

} // namespace marlin::serve

#endif // MARLIN_SERVE_METRICS_HTTP_HH
