#include "marlin/memsim/prefetcher.hh"

namespace marlin::memsim
{

StreamPrefetcher::StreamPrefetcher(PrefetcherConfig config)
    : _config(config), streams(config.streams)
{
}

void
StreamPrefetcher::observe(std::uint64_t line,
                          std::vector<std::uint64_t> &out)
{
    out.clear();
    if (!_config.enabled)
        return;
    ++useClock;

    // Try to match an existing stream (distance 1 or 2 in either
    // direction tolerates the skip patterns of strided gathers).
    Stream *lru = &streams[0];
    for (Stream &s : streams) {
        if (!s.valid) {
            lru = &s;
            continue;
        }
        if (s.lastUse < lru->lastUse || !lru->valid)
            lru = &s;

        const std::int64_t delta = static_cast<std::int64_t>(line) -
                                   static_cast<std::int64_t>(
                                       s.lastLine);
        if (delta == 0)
            return; // Same line; nothing to learn.
        if (delta >= -2 && delta <= 2) {
            const std::int32_t dir = delta > 0 ? 1 : -1;
            if (s.direction == dir || s.direction == 0) {
                if (s.direction == 0)
                    s.direction = dir;
                if (s.confidence < _config.trainThreshold)
                    ++s.confidence;
                s.lastLine = line;
                s.lastUse = useClock;
                if (s.confidence >= _config.trainThreshold) {
                    if (s.confidence == _config.trainThreshold) {
                        ++_stats.trained;
                        ++s.confidence; // Count training once.
                    }
                    for (std::uint32_t d = 1; d <= _config.degree;
                         ++d) {
                        const std::int64_t target =
                            static_cast<std::int64_t>(line) +
                            static_cast<std::int64_t>(d) *
                                s.direction;
                        if (target >= 0) {
                            out.push_back(static_cast<std::uint64_t>(
                                target));
                            ++_stats.issued;
                        }
                    }
                }
                return;
            }
        }
    }

    // No stream matched: allocate (replace LRU).
    lru->valid = true;
    lru->lastLine = line;
    lru->direction = 0;
    lru->confidence = 1;
    lru->lastUse = useClock;
}

void
StreamPrefetcher::reset()
{
    for (Stream &s : streams)
        s = Stream{};
    _stats = PrefetcherStats{};
    useClock = 0;
}

} // namespace marlin::memsim
