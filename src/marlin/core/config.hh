/**
 * @file
 * Training hyper-parameters. Defaults reproduce the paper's software
 * settings (Section V): two 64-unit ReLU hidden layers, Adam at
 * lr 0.01, batch 1024, gamma 0.95, tau 0.01, replay capacity 1e6,
 * updates every 100 added samples, 25-step episodes.
 */

#ifndef MARLIN_CORE_CONFIG_HH
#define MARLIN_CORE_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "marlin/base/types.hh"

namespace marlin::core
{

/** Where mini-batches are gathered from. */
enum class SamplingBackend
{
    /** Baseline: per-agent SoA buffers, O(N*B) gathers per trainer. */
    PerAgent,
    /**
     * Section IV-B2 layout reorganization: an interleaved key-value
     * store maintained alongside the buffers; gathers are O(B).
     */
    Interleaved,
    /**
     * PR-10 replay engine: power-of-two shards of interleaved joint
     * records with an optional mmap-backed cold tier, so capacity
     * can exceed RAM. Sampling stays bit-identical for any shard
     * count (logical index space is shard-independent).
     */
    Sharded
};

/** Action-space handling of the trainers. */
enum class ActionMode
{
    /** Paper setting: 5 discrete actions, one-hot in the replay,
     *  Gumbel-sampled policies with a softmax relaxation. */
    Discrete,
    /** Canonical DDPG-style control: tanh actors emit a 2D force,
     *  explored with Ornstein-Uhlenbeck noise. */
    Continuous
};

/**
 * What the training runtime does when a non-finite (NaN/Inf) loss or
 * gradient shows up in an update.
 */
enum class HealthGuardPolicy
{
    /** Count the event in TrainResult but change nothing (default). */
    Off,
    /** Stop the run; TrainResult reports the halt. */
    Halt,
    /** Drop the poisoned agent updates and keep training. */
    SkipUpdate,
    /** Restore the last checkpoint and continue from there. */
    Rollback
};

/** Hyper-parameters shared by MADDPG and MATD3. */
struct TrainConfig
{
    std::size_t batchSize = 1024;
    BufferIndex bufferCapacity = 1'000'000;
    std::vector<std::size_t> hiddenDims = {64, 64};
    Real lr = Real(0.01);
    Real gamma = Real(0.95);
    Real tau = Real(0.01);
    /** Environment steps per episode. */
    std::size_t maxEpisodeLength = 25;
    /** Train every this many buffer insertions. */
    std::size_t updateEvery = 100;
    /** Minimum stored transitions before updates begin. */
    BufferIndex warmupTransitions = 1024;
    /** Exploration: initial epsilon for epsilon-greedy action mix. */
    Real epsilonStart = Real(0.3);
    /** Exploration: final epsilon. */
    Real epsilonEnd = Real(0.02);
    /** Episodes over which epsilon decays linearly. */
    std::size_t epsilonDecayEpisodes = 2000;
    /** MATD3 only: critic updates per actor/target update. */
    std::size_t policyDelay = 2;
    /** MATD3 only: target policy smoothing noise stddev (logits). */
    Real targetNoiseStd = Real(0.2);
    /** MATD3 only: clip bound for the smoothing noise. */
    Real targetNoiseClip = Real(0.5);
    SamplingBackend backend = SamplingBackend::PerAgent;
    /** Sharded backend: power-of-two replay shard count. */
    std::size_t replayShards = 1;
    /**
     * Sharded backend: joint transitions kept in RAM (the hot
     * tier); 0 keeps everything hot. Anything beyond this spills
     * write-behind into mmap segments under replayColdDir.
     */
    BufferIndex replayHotCapacity = 0;
    /** Sharded backend: cold-segment directory ("" = all-hot). */
    std::string replayColdDir;
    ActionMode actionMode = ActionMode::Discrete;
    /** Continuous mode: OU exploration noise scale. */
    Real ouSigma = Real(0.2);
    std::uint64_t seed = 7;
    /** Reaction to NaN/Inf losses or gradients during updates. */
    HealthGuardPolicy healthPolicy = HealthGuardPolicy::Off;
    /**
     * Rollback policy only: rollbacks allowed before the run halts
     * anyway (a deterministic NaN re-derives itself from restored
     * state, so unbounded retries would loop forever).
     */
    std::size_t healthMaxRollbacks = 3;
};

} // namespace marlin::core

#endif // MARLIN_CORE_CONFIG_HH
