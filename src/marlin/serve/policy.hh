/**
 * @file
 * The weights the serving tier answers queries with: one actor Mlp
 * per agent, deep-copied out of a trainer so the server owns its
 * parameters outright and a training process (or a checkpoint
 * reload) can never mutate them mid-batch.
 *
 * The server event loop is single-threaded, so a swap — adoptFrom()
 * between two batch flushes — needs no locking and drops no
 * connections: in-flight requests decoded before the swap are
 * answered by the new weights on the next flush, which is exactly
 * the semantics a hot checkpoint reload wants.
 */

#ifndef MARLIN_SERVE_POLICY_HH
#define MARLIN_SERVE_POLICY_HH

#include <cstdint>
#include <vector>

#include "marlin/nn/mlp.hh"

namespace marlin::core
{
class CtdeTrainerBase;
}

namespace marlin::serve
{

using numeric::Matrix;

/** Per-agent actor networks snapshotted for serving. */
class ServePolicy
{
  public:
    ServePolicy() = default;

    /**
     * Replace the served weights with deep copies of @p trainer's
     * current actors and advance the version. Cold path: copying
     * allocates; call it at startup and on reload, never per batch.
     */
    void adoptFrom(core::CtdeTrainerBase &trainer);

    std::size_t numAgents() const { return actors.size(); }

    std::size_t
    obsDim(std::size_t agent) const
    {
        return obsDims[agent];
    }

    /** Actor output width (logits or continuous action dims). */
    std::size_t actDim() const { return _actDim; }

    /** Swap count; 1 after the first adoptFrom. */
    std::uint64_t version() const { return ver; }

    /**
     * Batched actor forward for @p agent: @p obs is (rows, obsDim),
     * @p out is resized to (rows, actDim()). Runs on the Mlp's
     * retained scratch, so a warm call performs no heap allocation
     * — the PR-5 zero-alloc contract extended to serving.
     */
    void forward(std::size_t agent, const Matrix &obs, Matrix &out);

  private:
    std::vector<nn::Mlp> actors;
    std::vector<std::size_t> obsDims;
    std::size_t _actDim = 0;
    std::uint64_t ver = 0;
};

} // namespace marlin::serve

#endif // MARLIN_SERVE_POLICY_HH
