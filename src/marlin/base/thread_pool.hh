/**
 * @file
 * Deterministic fixed-size thread pool for the training hot path.
 *
 * The paper's characterization shows "update all trainers" dominating
 * end-to-end time and growing with agent count; the work inside it
 * (per-agent critic/actor updates, GEMM row blocks, vector-env lanes)
 * is embarrassingly parallel over disjoint outputs. ThreadPool
 * exposes exactly that shape: a blocking parallelFor over an index
 * range, statically partitioned so every index computes the same
 * floating-point operations in the same order regardless of thread
 * count — results are bit-identical whether the pool runs 1 or 64
 * threads.
 *
 * Design rules that keep it deterministic and safe:
 *  - Callers must only write outputs disjoint per index; the pool
 *    adds no synchronization around the callback.
 *  - With 1 thread the callback runs fully inline on the caller; no
 *    worker threads are ever spawned.
 *  - Nested parallelFor calls (a worker re-entering the pool, e.g.
 *    a parallel GEMM inside a parallel per-agent update) are
 *    rejected as parallel dispatches and run inline on the worker
 *    instead of deadlocking on the pool's own capacity.
 *  - The first exception thrown by any chunk is captured and
 *    rethrown on the calling thread after all workers finish.
 */

#ifndef MARLIN_BASE_THREAD_POOL_HH
#define MARLIN_BASE_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace marlin::base
{

/** Fixed-size worker pool with a deterministic blocking parallelFor. */
class ThreadPool
{
  public:
    /**
     * Callback for one contiguous index chunk [begin, end). Chunks
     * never overlap, so per-index outputs need no locking.
     */
    using RangeFn = std::function<void(std::size_t, std::size_t)>;

    /**
     * Type-erased chunk callback: @p ctx is the callable the
     * template parallelFor captured by address. Using a raw function
     * pointer instead of std::function keeps dispatch free of heap
     * allocations for any capture size — std::function's small-buffer
     * optimization tops out around two pointers, and several hot-path
     * callers (GEMM row blocks, per-agent updates) capture more.
     */
    using RawRangeFn = void (*)(void *ctx, std::size_t begin,
                                std::size_t end);

    /**
     * @param threads Worker count including the calling thread;
     *        clamped to >= 1. With 1, no OS threads are created and
     *        parallelFor degenerates to a plain loop.
     */
    explicit ThreadPool(std::size_t threads);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    ~ThreadPool();

    /** Configured parallelism (spawned workers + the caller). */
    std::size_t numThreads() const { return _threads; }

    /**
     * Run @p fn over [begin, end), blocking until every index is
     * done. The range splits into at most numThreads() chunks of at
     * least @p grain indices each (grain 0 counts as 1); chunk
     * boundaries depend only on the range, grain and thread count,
     * never on runtime timing. Empty ranges return immediately.
     * Called from a pool worker, the whole range runs inline.
     *
     * @p fn is any callable taking (begin, end); it is captured by
     * reference for the duration of the call (parallelFor blocks, so
     * the reference cannot dangle) and dispatch performs no heap
     * allocation regardless of capture size.
     */
    template <typename F>
    void
    parallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                F &&fn)
    {
        using Fn = std::remove_reference_t<F>;
        parallelForRaw(
            begin, end, grain,
            [](void *ctx, std::size_t c0, std::size_t c1) {
                (*static_cast<Fn *>(ctx))(c0, c1);
            },
            const_cast<void *>(
                static_cast<const void *>(std::addressof(fn))));
    }

    /** Type-erased core of parallelFor; same contract. */
    void parallelForRaw(std::size_t begin, std::size_t end,
                        std::size_t grain, RawRangeFn fn, void *ctx);

    /** True when the calling thread is a pool worker of any pool. */
    static bool inWorker();

    /**
     * Process-wide pool shared by GEMM, trainer updates and vector
     * envs. First use builds it with threads from setGlobalThreads(),
     * else the MARLIN_THREADS environment variable, else hardware
     * concurrency.
     */
    static ThreadPool &global();

    /**
     * Resize the global pool (0 = auto). Not thread-safe against
     * concurrent global() users — call it at startup or between
     * training phases, as the CLI --threads flag does.
     */
    static void setGlobalThreads(std::size_t threads);

    /** Thread count the global pool has (or would be built with). */
    static std::size_t globalThreads();

    /**
     * Observer invoked after each executed chunk with its start time
     * and duration (nanoseconds on the instant.hh timebase). The base
     * layer knows nothing about tracing; the obs subsystem installs a
     * hook here when --trace enables the trace ring. Must be cheap
     * and must not touch the pool. nullptr (the default) costs one
     * relaxed load per chunk.
     */
    using TaskHook = void (*)(std::uint64_t start_ns,
                              std::uint64_t dur_ns);

    static void setTaskHook(TaskHook hook) noexcept;

  private:
    struct Job
    {
        RawRangeFn fn = nullptr;
        void *ctx = nullptr;
        std::size_t begin = 0;
        std::size_t end = 0;
        std::size_t grain = 1;
        std::size_t chunks = 0;
        std::atomic<std::size_t> nextChunk{0};
        std::atomic<std::size_t> pendingChunks{0};
        /** Workers currently inside this job; guarded by mutex. */
        std::size_t activeWorkers = 0;
        std::exception_ptr error;
        std::mutex errorMutex;
    };

    void workerLoop();
    void runChunks(Job &j);

    std::size_t _threads;
    std::vector<std::thread> workers;

    std::mutex mutex;
    std::condition_variable wakeWorkers;
    std::condition_variable jobDone;
    Job *job = nullptr;          ///< Current dispatch, null when idle.
    std::uint64_t generation = 0; ///< Bumped per dispatch to wake workers.
    bool stopping = false;
};

} // namespace marlin::base

#endif // MARLIN_BASE_THREAD_POOL_HH
