/**
 * @file
 * Ablation (DESIGN.md decision 5): the info-prioritized sampler's
 * neighbor predictor. Sweeps the paper's threshold scheme (1/2/4
 * neighbors at 0.33/0.66) against fixed run lengths and alternative
 * threshold placements, reporting sampling time and simulated cache
 * misses — the efficiency/locality trade the predictor navigates.
 */

#include "common.hh"

namespace
{

using namespace marlin;
using namespace marlin::bench;

struct Outcome
{
    double ms = 0;
    std::uint64_t l1Misses = 0;
    double meanRun = 0;
};

Outcome
measure(replay::InfoPrioritizedLocalitySampler &sampler,
        const replay::MultiAgentBuffer &buffers, int reps)
{
    Rng rng(5);
    std::vector<replay::AgentBatch> batches;
    for (std::size_t t = 0; t < buffers.numAgents(); ++t) {
        auto plan = sampler.plan(buffers.size(), 1024, rng);
        replay::gatherAllAgents(buffers, plan, batches);
    }

    Outcome out;
    profile::Stopwatch sw;
    for (int rep = 0; rep < reps; ++rep) {
        for (std::size_t t = 0; t < buffers.numAgents(); ++t) {
            auto plan = sampler.plan(buffers.size(), 1024, rng);
            replay::gatherAllAgents(buffers, plan, batches);
        }
    }
    out.ms = sw.elapsedSeconds() / reps * 1e3;

    // Counters + mean contiguous-run length from one traced update.
    replay::AccessTrace trace;
    std::size_t runs = 0;
    for (std::size_t t = 0; t < buffers.numAgents(); ++t) {
        auto plan = sampler.plan(buffers.size(), 1024, rng);
        replay::gatherAllAgents(buffers, plan, batches, &trace);
        for (std::size_t b = 0; b < plan.indices.size(); ++b) {
            if (b == 0 ||
                plan.indices[b] != plan.indices[b - 1] + 1)
                ++runs;
        }
    }
    out.meanRun = runs
                      ? static_cast<double>(1024 *
                                            buffers.numAgents()) /
                            static_cast<double>(runs)
                      : 0;
    auto preset =
        memsim::makePlatform(memsim::PlatformId::Threadripper3975WX);
    memsim::CacheHierarchy hierarchy(preset.hierarchy);
    out.l1Misses =
        memsim::replayTrace(hierarchy, trace, preset.frequencyHz)
            .stats.l1.misses;
    return out;
}

void
row(const char *label, replay::NeighborPredictorConfig predictor,
    const replay::MultiAgentBuffer &buffers, BufferIndex capacity)
{
    replay::PerConfig per_cfg;
    per_cfg.capacity = capacity;
    replay::InfoPrioritizedLocalitySampler sampler(per_cfg,
                                                   predictor);
    std::vector<BufferIndex> ids(capacity);
    std::vector<Real> tds(capacity);
    Rng prio(3);
    for (BufferIndex i = 0; i < capacity; ++i) {
        ids[i] = i;
        tds[i] = prio.uniformf() + Real(0.01);
    }
    sampler.updatePriorities(ids, tds);

    auto out = measure(sampler, buffers, 3);
    std::printf("%-26s %10.2f %12llu %10.2f\n", label, out.ms,
                static_cast<unsigned long long>(out.l1Misses),
                out.meanRun);
}

} // namespace

int
main(int argc, char **argv)
{
    initThreads(argc, argv);
    initIsa(argc, argv);
    initLogLevel(argc, argv);
    ObsSession obs(argc, argv, "bench_ablation_predictor");
    banner("Ablation: info-prioritized neighbor predictor");
    const std::size_t agents = 6;
    auto shapes = taskShapes(Task::PredatorPrey, agents);
    const BufferIndex capacity =
        scaledCapacity(shapes, 384ull << 20);
    replay::MultiAgentBuffer buffers(shapes, capacity);
    Rng fill_rng(1);
    fillSynthetic(buffers, capacity, fill_rng);

    std::printf("predator-prey, %zu agents, capacity %llu\n\n",
                agents, static_cast<unsigned long long>(capacity));
    std::printf("%-26s %10s %12s %10s\n", "predictor", "time(ms)",
                "l1 misses", "mean run");

    // Paper scheme: 1/2/4 neighbors at 0.33/0.66.
    row("paper (1/2/4 @ .33/.66)", {}, buffers, capacity);
    // Fixed run lengths (degenerate predictors).
    row("fixed 1 (pure PER)", {Real(2), Real(3), 1, 1, 1}, buffers,
        capacity);
    row("fixed 4", {Real(-1), Real(-0.5), 4, 4, 4}, buffers,
        capacity);
    row("fixed 16", {Real(-1), Real(-0.5), 16, 16, 16}, buffers,
        capacity);
    // Shifted thresholds.
    row("aggressive (2/4/8 @ .2/.5)",
        {Real(0.2), Real(0.5), 2, 4, 8}, buffers, capacity);
    row("conservative (1/1/2 @ .5/.9)",
        {Real(0.5), Real(0.9), 1, 1, 2}, buffers, capacity);

    std::printf("\nexpectation: longer runs cut time and misses but "
                "dilute prioritization;\nthe paper's 1/2/4 scheme "
                "sits between pure PER and fixed long runs.\n");
    return 0;
}
