/**
 * @file
 * Unit tests for marlin/nn: layers, MLP backprop (checked against
 * finite differences), Adam, losses, and target-network updates.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "marlin/nn/adam.hh"
#include "marlin/nn/grad_check.hh"
#include "marlin/nn/loss.hh"
#include "marlin/nn/mlp.hh"
#include "marlin/numeric/ops.hh"

namespace marlin::nn
{
namespace
{

using numeric::fillUniform;

TEST(Linear, ForwardComputesXWPlusB)
{
    Rng rng(1);
    Linear lin(2, 3, rng);
    lin.weight.value = Matrix{{1, 2, 3}, {4, 5, 6}};
    lin.bias.value = Matrix{{10, 20, 30}};
    Matrix x{{1, 1}, {2, 0}};
    Matrix y;
    lin.forward(x, y);
    EXPECT_EQ(y(0, 0), Real(15)); // 1+4+10
    EXPECT_EQ(y(0, 2), Real(39)); // 3+6+30
    EXPECT_EQ(y(1, 0), Real(12)); // 2+10
}

TEST(Linear, BackwardShapes)
{
    Rng rng(2);
    Linear lin(4, 3, rng);
    Matrix x(5, 4), y, gy(5, 3), gx;
    fillUniform(x, rng, -1, 1);
    fillUniform(gy, rng, -1, 1);
    lin.forward(x, y);
    lin.backward(gy, gx);
    EXPECT_EQ(gx.rows(), 5u);
    EXPECT_EQ(gx.cols(), 4u);
    EXPECT_EQ(lin.weight.grad.rows(), 4u);
    EXPECT_EQ(lin.weight.grad.cols(), 3u);
    EXPECT_EQ(lin.bias.grad.cols(), 3u);
}

TEST(Linear, InitializationBounds)
{
    Rng rng(3);
    Linear lin(16, 8, rng);
    const Real bound = Real(1) / std::sqrt(Real(16));
    for (std::size_t i = 0; i < lin.weight.value.size(); ++i) {
        EXPECT_LE(std::abs(lin.weight.value.data()[i]), bound);
    }
}

TEST(Activation, ReluForwardBackward)
{
    ActivationLayer relu(Activation::ReLU);
    Matrix x{{-1, 0, 2}};
    Matrix y;
    relu.forward(x, y);
    EXPECT_EQ(y(0, 0), Real(0));
    EXPECT_EQ(y(0, 2), Real(2));
    Matrix gy{{1, 1, 1}}, gx;
    relu.backward(gy, gx);
    EXPECT_EQ(gx(0, 0), Real(0));
    EXPECT_EQ(gx(0, 1), Real(0)); // relu'(0) = 0 by convention
    EXPECT_EQ(gx(0, 2), Real(1));
}

TEST(Activation, TanhForwardBackward)
{
    ActivationLayer t(Activation::Tanh);
    Matrix x{{0, 1}};
    Matrix y;
    t.forward(x, y);
    EXPECT_NEAR(y(0, 0), 0.0, 1e-6);
    EXPECT_NEAR(y(0, 1), std::tanh(1.0), 1e-6);
    Matrix gy{{1, 1}}, gx;
    t.backward(gy, gx);
    EXPECT_NEAR(gx(0, 0), 1.0, 1e-6); // 1 - tanh(0)^2
    const double th = std::tanh(1.0);
    EXPECT_NEAR(gx(0, 1), 1.0 - th * th, 1e-5);
}

TEST(Activation, FromString)
{
    EXPECT_EQ(activationFromString("relu"), Activation::ReLU);
    EXPECT_EQ(activationFromString("tanh"), Activation::Tanh);
    EXPECT_EQ(activationFromString("identity"), Activation::Identity);
    EXPECT_STREQ(activationName(Activation::ReLU), "relu");
}

MlpConfig
smallConfig(std::size_t in, std::size_t out,
            Activation out_act = Activation::Identity)
{
    MlpConfig c;
    c.inputDim = in;
    c.hiddenDims = {8, 8};
    c.outputDim = out;
    c.outputActivation = out_act;
    return c;
}

TEST(Mlp, OutputShape)
{
    Rng rng(5);
    Mlp net(smallConfig(6, 3), rng);
    Matrix x(10, 6);
    fillUniform(x, rng, -1, 1);
    Matrix y = net.forward(x);
    EXPECT_EQ(y.rows(), 10u);
    EXPECT_EQ(y.cols(), 3u);
}

TEST(Mlp, ParamCount)
{
    Rng rng(6);
    Mlp net(smallConfig(6, 3), rng);
    // (6*8+8) + (8*8+8) + (8*3+3) = 56+72+27 = 155.
    EXPECT_EQ(net.paramCount(), 155u);
    EXPECT_EQ(net.params().size(), 6u);
}

class MlpGradCheck
    : public ::testing::TestWithParam<std::tuple<int, int, Activation>>
{
};

// ReLU kinks make finite differences locally unreliable in single
// precision, so the ReLU-hidden suite bounds the *absolute* error;
// the smooth (tanh-hidden) suite below bounds the relative error.
TEST_P(MlpGradCheck, ParameterGradientsMatchFiniteDifference)
{
    const auto [in, out, act] = GetParam();
    Rng rng(in * 100 + out);
    Mlp net(smallConfig(in, out, act), rng);
    Matrix x(4, in), target(4, out);
    fillUniform(x, rng, -1, 1);
    fillUniform(target, rng, -1, 1);
    auto res = checkMlpGradients(net, x, target, Real(1e-2));
    EXPECT_GT(res.checked, 0u);
    EXPECT_LT(res.maxAbsError, 0.02);
}

TEST_P(MlpGradCheck, InputGradientsMatchFiniteDifference)
{
    const auto [in, out, act] = GetParam();
    Rng rng(in * 31 + out * 7);
    Mlp net(smallConfig(in, out, act), rng);
    Matrix x(3, in), target(3, out);
    fillUniform(x, rng, -1, 1);
    fillUniform(target, rng, -1, 1);
    auto res = checkInputGradients(net, x, target, Real(1e-2));
    EXPECT_GT(res.checked, 0u);
    EXPECT_LT(res.maxAbsError, 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MlpGradCheck,
    ::testing::Values(
        std::make_tuple(3, 1, Activation::Identity),
        std::make_tuple(5, 4, Activation::Identity),
        std::make_tuple(8, 2, Activation::Tanh),
        std::make_tuple(16, 5, Activation::Identity)));

class SmoothMlpGradCheck
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(SmoothMlpGradCheck, RelativeErrorTightForSmoothNetwork)
{
    const auto [in, out] = GetParam();
    Rng rng(in * 997 + out);
    MlpConfig cfg = smallConfig(in, out);
    cfg.hiddenActivation = Activation::Tanh;
    Mlp net(cfg, rng);
    Matrix x(4, in), target(4, out);
    fillUniform(x, rng, -1, 1);
    fillUniform(target, rng, -1, 1);

    auto params = checkMlpGradients(net, x, target, Real(1e-2));
    EXPECT_LT(params.maxRelError, 0.05)
        << "abs " << params.maxAbsError;
    auto inputs = checkInputGradients(net, x, target, Real(1e-2));
    EXPECT_LT(inputs.maxRelError, 0.05)
        << "abs " << inputs.maxAbsError;
}

INSTANTIATE_TEST_SUITE_P(Shapes, SmoothMlpGradCheck,
                         ::testing::Values(std::make_pair(3, 1),
                                           std::make_pair(6, 4),
                                           std::make_pair(10, 2)));

TEST(Mlp, GradientsAccumulateAcrossBackwards)
{
    Rng rng(7);
    Mlp net(smallConfig(4, 2), rng);
    Matrix x(2, 4), target(2, 2);
    fillUniform(x, rng, -1, 1);
    fillUniform(target, rng, -1, 1);

    auto run_backward = [&] {
        Matrix pred = net.forward(x);
        Matrix g;
        mseLoss(pred, target, g);
        net.backward(g);
    };

    net.zeroGrad();
    run_backward();
    const Real g1 = net.params()[0]->grad(0, 0);
    run_backward();
    const Real g2 = net.params()[0]->grad(0, 0);
    EXPECT_NEAR(g2, 2 * g1, std::abs(g1) * 1e-3 + 1e-7);
}

TEST(Mlp, CopyFromMakesOutputsIdentical)
{
    Rng rng(8);
    Mlp a(smallConfig(5, 3), rng);
    Mlp b(smallConfig(5, 3), rng);
    Matrix x(4, 5);
    fillUniform(x, rng, -1, 1);
    b.copyFrom(a);
    Matrix ya = a.forward(x);
    Matrix yb = b.forward(x);
    for (std::size_t i = 0; i < ya.size(); ++i)
        EXPECT_EQ(ya.data()[i], yb.data()[i]);
}

TEST(Mlp, SoftUpdateInterpolates)
{
    Rng rng(9);
    Mlp src(smallConfig(3, 2), rng);
    Mlp dst(smallConfig(3, 2), rng);
    const Real w_src = src.params()[0]->value(0, 0);
    const Real w_dst = dst.params()[0]->value(0, 0);
    dst.softUpdateFrom(src, Real(0.25));
    EXPECT_NEAR(dst.params()[0]->value(0, 0),
                Real(0.25) * w_src + Real(0.75) * w_dst, 1e-6);
}

TEST(Mlp, SoftUpdateTauOneCopies)
{
    Rng rng(10);
    Mlp src(smallConfig(3, 2), rng);
    Mlp dst(smallConfig(3, 2), rng);
    dst.softUpdateFrom(src, Real(1));
    for (std::size_t p = 0; p < src.params().size(); ++p) {
        EXPECT_EQ(dst.params()[p]->value(0, 0),
                  src.params()[p]->value(0, 0));
    }
}

TEST(Adam, ConvergesOnQuadratic)
{
    // Minimize ||w - target||^2 for a single Param.
    Param w;
    w.init(1, 4);
    const Real target[4] = {1, -2, 3, -4};
    AdamConfig cfg;
    cfg.lr = Real(0.05);
    cfg.gradClipNorm = Real(0); // No clipping.
    AdamOptimizer opt({&w}, cfg);
    for (int step = 0; step < 2000; ++step) {
        for (int i = 0; i < 4; ++i)
            w.grad(0, i) = 2 * (w.value(0, i) - target[i]);
        opt.step();
    }
    for (int i = 0; i < 4; ++i)
        EXPECT_NEAR(w.value(0, i), target[i], 1e-2);
}

TEST(Adam, StepZeroesGradients)
{
    Param w;
    w.init(1, 2);
    w.grad.fill(Real(1));
    AdamOptimizer opt({&w});
    opt.step();
    EXPECT_EQ(w.grad(0, 0), Real(0));
    EXPECT_EQ(w.grad(0, 1), Real(0));
}

TEST(Adam, ClipGradNormScales)
{
    Param w;
    w.init(1, 2);
    w.grad(0, 0) = Real(3);
    w.grad(0, 1) = Real(4); // norm 5
    AdamConfig cfg;
    AdamOptimizer opt({&w}, cfg);
    const Real norm = opt.clipGradNorm(Real(1));
    EXPECT_NEAR(norm, 5.0, 1e-5);
    EXPECT_NEAR(w.grad(0, 0), 0.6, 1e-5);
    EXPECT_NEAR(w.grad(0, 1), 0.8, 1e-5);
}

TEST(Adam, NoClipBelowThreshold)
{
    Param w;
    w.init(1, 1);
    w.grad(0, 0) = Real(0.5);
    AdamOptimizer opt({&w});
    opt.clipGradNorm(Real(1));
    EXPECT_EQ(w.grad(0, 0), Real(0.5));
}

TEST(Loss, MseValueAndGradient)
{
    Matrix pred{{1, 2}}, target{{0, 0}};
    Matrix grad;
    const Real loss = mseLoss(pred, target, grad);
    EXPECT_NEAR(loss, (1.0 + 4.0) / 2.0, 1e-6);
    EXPECT_NEAR(grad(0, 0), 2.0 * 1 / 2, 1e-6);
    EXPECT_NEAR(grad(0, 1), 2.0 * 2 / 2, 1e-6);
}

TEST(Loss, WeightedMseReducesToMseWithUnitWeights)
{
    Rng rng(12);
    Matrix pred(6, 1), target(6, 1);
    fillUniform(pred, rng, -1, 1);
    fillUniform(target, rng, -1, 1);
    Matrix g1, g2;
    const Real l1 = mseLoss(pred, target, g1);
    const Real l2 = weightedMseLoss(pred, target,
                                    std::vector<Real>(6, Real(1)), g2);
    EXPECT_NEAR(l1, l2, 1e-6);
    for (std::size_t i = 0; i < g1.size(); ++i)
        EXPECT_NEAR(g1.data()[i], g2.data()[i], 1e-6);
}

TEST(Loss, WeightedMseScalesPerRow)
{
    Matrix pred{{1}, {1}}, target{{0}, {0}};
    Matrix grad;
    weightedMseLoss(pred, target, {Real(1), Real(0.5)}, grad);
    EXPECT_NEAR(grad(1, 0), grad(0, 0) * 0.5, 1e-6);
}

TEST(Loss, PolicyLossIsNegativeMeanQ)
{
    Matrix q{{1}, {3}};
    Matrix grad;
    const Real loss = policyLoss(q, grad);
    EXPECT_NEAR(loss, -2.0, 1e-6);
    EXPECT_NEAR(grad(0, 0), -0.5, 1e-6);
    EXPECT_NEAR(grad(1, 0), -0.5, 1e-6);
}

TEST(Loss, AbsTdError)
{
    Matrix pred{{1}, {-2}}, target{{3}, {-1}};
    auto td = absTdError(pred, target);
    ASSERT_EQ(td.size(), 2u);
    EXPECT_NEAR(td[0], 2.0, 1e-6);
    EXPECT_NEAR(td[1], 1.0, 1e-6);
}

TEST(Mlp, TrainsToFitSmallRegression)
{
    // End-to-end sanity: a small MLP + Adam fits y = [sum, diff].
    Rng rng(14);
    MlpConfig cfg = smallConfig(2, 2);
    cfg.hiddenDims = {16, 16};
    Mlp net(cfg, rng);
    AdamConfig acfg;
    acfg.lr = Real(0.01);
    AdamOptimizer opt(net.params(), acfg);

    Matrix x(64, 2), y(64, 2);
    fillUniform(x, rng, -1, 1);
    for (std::size_t r = 0; r < 64; ++r) {
        y(r, 0) = x(r, 0) + x(r, 1);
        y(r, 1) = x(r, 0) - x(r, 1);
    }

    Real loss = 0;
    for (int step = 0; step < 400; ++step) {
        Matrix pred = net.forward(x);
        Matrix g;
        loss = mseLoss(pred, y, g);
        net.backward(g);
        opt.step();
    }
    EXPECT_LT(loss, 1e-3);
}

} // namespace
} // namespace marlin::nn
