/**
 * @file
 * Quickstart: train MADDPG on a 3-agent cooperative navigation task
 * and print the learning curve plus the paper-style phase breakdown.
 *
 *   ./quickstart [episodes]
 */

#include <cstdio>
#include <cstdlib>

#include "marlin/marlin.hh"

using namespace marlin;

int
main(int argc, char **argv)
{
    const std::size_t episodes =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1500;

    // 1. Build the environment: 3 agents covering 3 landmarks.
    auto environment = env::makeCooperativeNavigationEnv(
        /*num_agents=*/3, /*seed=*/7);

    // 2. Configure training (paper defaults, scaled down so the
    //    demo finishes in seconds).
    core::TrainConfig config;
    config.batchSize = 128;
    config.bufferCapacity = 1 << 15;
    config.warmupTransitions = 256;
    config.updateEvery = 50;
    config.hiddenDims = {64, 64};
    config.epsilonDecayEpisodes = episodes / 2;
    config.seed = 7;

    // 3. Build the trainer. The sampler factory is the seam where
    //    the paper's optimizations plug in — here, the baseline
    //    uniform sampler.
    std::vector<std::size_t> obs_dims;
    for (std::size_t i = 0; i < environment->numAgents(); ++i)
        obs_dims.push_back(environment->obsDim(i));
    core::MaddpgTrainer trainer(
        obs_dims, environment->actionDim(), config,
        [] { return std::make_unique<replay::UniformSampler>(); });

    // 4. Run the training loop, reporting every 10% of progress.
    core::TrainLoop loop(*environment, trainer, config);
    std::printf("training MADDPG on %s with %zu agents, %zu "
                "episodes...\n",
                environment->scenario().name().c_str(),
                environment->numAgents(), episodes);
    const std::size_t report_every =
        std::max<std::size_t>(1, episodes / 10);
    double window = 0;
    auto result = loop.run(episodes, [&](const core::EpisodeInfo &e) {
        window += e.meanReward;
        if ((e.episode + 1) % report_every == 0) {
            std::printf("  episode %5zu  mean reward %8.2f\n",
                        e.episode + 1, window / report_every);
            window = 0;
        }
    });

    // 5. Report the phase breakdown the paper characterizes.
    std::printf("\nfinal score (last 10%% of episodes): %.2f\n",
                result.finalScore);
    std::printf("%s\n",
                profile::formatTopLevel(
                    profile::topLevelBreakdown(result.timer))
                    .c_str());
    std::printf("%s\n",
                profile::formatUpdate(
                    profile::updateBreakdown(result.timer))
                    .c_str());
    std::printf("\n%s", profile::formatPhaseTable(result.timer).c_str());
    return 0;
}
