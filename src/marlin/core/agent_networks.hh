/**
 * @file
 * The four (or six, for twin-critic MATD3) networks each agent owns
 * in the CTDE architecture: decentralized actor + centralized critic
 * with their target copies, plus bound Adam optimizers.
 */

#ifndef MARLIN_CORE_AGENT_NETWORKS_HH
#define MARLIN_CORE_AGENT_NETWORKS_HH

#include <memory>

#include "marlin/nn/adam.hh"
#include "marlin/nn/mlp.hh"

namespace marlin::core
{

using nn::Mlp;

/** Shape inputs for AgentNetworks. */
struct AgentNetworksConfig
{
    std::size_t obsDim = 0;      ///< This agent's observation size.
    std::size_t actDim = 0;      ///< Discrete action count.
    std::size_t jointDim = 0;    ///< Sum over agents of obs+act dims.
    std::vector<std::size_t> hiddenDims = {64, 64};
    Real lr = Real(0.01);
    bool twinCritic = false;     ///< MATD3's second critic.
    /** Identity for discrete logits, Tanh for continuous control. */
    nn::Activation actorOutput = nn::Activation::Identity;
};

/**
 * Per-agent network bundle. Non-copyable and non-movable: the Adam
 * optimizers hold stable pointers into the networks' parameters.
 */
class AgentNetworks
{
  public:
    AgentNetworks(const AgentNetworksConfig &config, Rng &rng);

    AgentNetworks(const AgentNetworks &) = delete;
    AgentNetworks &operator=(const AgentNetworks &) = delete;

    Mlp actor;        ///< obs -> action logits.
    Mlp critic;       ///< joint obs+act -> Q.
    Mlp targetActor;
    Mlp targetCritic;
    /** Twin critic (MATD3); null unless twinCritic was set. */
    std::unique_ptr<Mlp> critic2;
    std::unique_ptr<Mlp> targetCritic2;

    nn::AdamOptimizer actorOpt;
    nn::AdamOptimizer criticOpt; ///< Covers critic2 too when present.

    /** Polyak-update all target networks. */
    void softUpdateTargets(Real tau);

    /** Total trainable parameter count across live networks. */
    std::size_t paramCount() const;
};

} // namespace marlin::core

#endif // MARLIN_CORE_AGENT_NETWORKS_HH
