/**
 * @file
 * Tests for continuous-action control: environment force stepping,
 * tanh actors with OU exploration, trainer updates, and a full
 * continuous training run.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "marlin/core/maddpg.hh"
#include "marlin/core/matd3.hh"
#include "marlin/core/train_loop.hh"
#include "marlin/env/environment.hh"
#include "marlin/replay/uniform_sampler.hh"

namespace marlin::core
{
namespace
{

TrainConfig
continuousConfig()
{
    TrainConfig c;
    c.batchSize = 16;
    c.bufferCapacity = 512;
    c.warmupTransitions = 32;
    c.updateEvery = 20;
    c.hiddenDims = {8, 8};
    c.actionMode = ActionMode::Continuous;
    c.seed = 13;
    return c;
}

SamplerFactory
uniformFactory()
{
    return [] { return std::make_unique<replay::UniformSampler>(); };
}

TEST(ContinuousEnv, ForceMovesAgent)
{
    auto environment = env::makeCooperativeNavigationEnv(3, 1);
    environment->reset();
    const env::Vec2 before = environment->world().agents[0].pos;
    environment->stepContinuous({{1, 0}, {0, 0}, {0, 0}});
    const env::Vec2 after = environment->world().agents[0].pos;
    EXPECT_GT(after.x, before.x);
    EXPECT_NEAR(after.y, before.y, 1e-6);
}

TEST(ContinuousEnv, ForcesAreClamped)
{
    auto environment = env::makeCooperativeNavigationEnv(3, 2);
    environment->reset();
    auto unit = env::makeCooperativeNavigationEnv(3, 2);
    unit->reset();
    environment->stepContinuous({{100, 0}, {0, 0}, {0, 0}});
    unit->stepContinuous({{1, 0}, {0, 0}, {0, 0}});
    EXPECT_FLOAT_EQ(environment->world().agents[0].vel.x,
                    unit->world().agents[0].vel.x);
}

TEST(ContinuousEnv, ScriptedPreyStillMoves)
{
    auto environment = env::makePredatorPreyEnv(3, 3);
    environment->reset();
    const env::Vec2 before = environment->world().agents[3].pos;
    for (int t = 0; t < 5; ++t)
        environment->stepContinuous({{0, 0}, {0, 0}, {0, 0}});
    EXPECT_NE(environment->world().agents[3].pos, before);
}

TEST(ContinuousTrainer, ActionsWithinBox)
{
    MaddpgTrainer trainer({6, 6}, 2, continuousConfig(),
                          uniformFactory());
    std::vector<std::vector<Real>> obs(2, std::vector<Real>(6, 0.1f));
    for (int rep = 0; rep < 20; ++rep) {
        auto actions = trainer.selectContinuousActions(obs, 0);
        ASSERT_EQ(actions.size(), 2u);
        for (const auto &a : actions) {
            EXPECT_GE(a[0], Real(-1));
            EXPECT_LE(a[0], Real(1));
            EXPECT_GE(a[1], Real(-1));
            EXPECT_LE(a[1], Real(1));
        }
    }
}

TEST(ContinuousTrainer, GreedyIsDeterministicAndNoisyIsNot)
{
    MaddpgTrainer trainer({6}, 2, continuousConfig(),
                          uniformFactory());
    std::vector<std::vector<Real>> obs(1, std::vector<Real>(6, 0.4f));
    auto g1 = trainer.greedyContinuousActions(obs);
    auto g2 = trainer.greedyContinuousActions(obs);
    EXPECT_EQ(g1[0], g2[0]);
    auto n1 = trainer.selectContinuousActions(obs, 0);
    auto n2 = trainer.selectContinuousActions(obs, 0);
    EXPECT_NE(n1[0], n2[0]); // OU noise advances.
}

TEST(ContinuousTrainer, DiscreteTrainerPanicsOnContinuousApi)
{
    TrainConfig discrete = continuousConfig();
    discrete.actionMode = ActionMode::Discrete;
    MaddpgTrainer trainer({6}, 5, discrete, uniformFactory());
    std::vector<std::vector<Real>> obs(1, std::vector<Real>(6));
    EXPECT_DEATH(trainer.selectContinuousActions(obs, 0),
                 "built for discrete");
}

TEST(ContinuousTrainer, UpdateMovesActorParameters)
{
    auto config = continuousConfig();
    MaddpgTrainer trainer({6, 6}, 2, config, uniformFactory());
    replay::MultiAgentBuffer buf(trainer.transitionShapes(),
                                 config.bufferCapacity);
    Rng rng(7);
    for (int t = 0; t < 64; ++t) {
        std::vector<std::vector<Real>> obs(2), act(2), next(2);
        std::vector<Real> rew(2);
        std::vector<bool> done(2, false);
        for (int a = 0; a < 2; ++a) {
            obs[a].resize(6);
            next[a].resize(6);
            for (auto &v : obs[a])
                v = static_cast<Real>(rng.uniform(-1, 1));
            next[a] = obs[a];
            act[a] = {static_cast<Real>(rng.uniform(-1, 1)),
                      static_cast<Real>(rng.uniform(-1, 1))};
            rew[a] = static_cast<Real>(rng.uniform(-1, 1));
        }
        buf.add(obs, act, rew, next, done);
    }
    const Real before =
        trainer.networks(0).actor.params()[0]->value(0, 0);
    profile::PhaseTimer timer;
    auto stats = trainer.update(buf, timer);
    EXPECT_NE(trainer.networks(0).actor.params()[0]->value(0, 0),
              before);
    EXPECT_TRUE(std::isfinite(stats.criticLoss));
    EXPECT_TRUE(std::isfinite(stats.actorLoss));
}

TEST(ContinuousTrainer, FullTrainingRunStaysFinite)
{
    auto environment = env::makeCooperativeNavigationEnv(3, 21);
    auto config = continuousConfig();
    std::vector<std::size_t> dims;
    for (std::size_t i = 0; i < environment->numAgents(); ++i)
        dims.push_back(environment->obsDim(i));
    MaddpgTrainer trainer(dims, 2, config, uniformFactory());
    TrainLoop loop(*environment, trainer, config);
    auto result = loop.run(20);
    EXPECT_GT(result.updateCalls, 0u);
    for (Real r : result.episodeRewards)
        ASSERT_TRUE(std::isfinite(r));
}

TEST(ContinuousTrainer, Matd3RunStaysFinite)
{
    auto environment = env::makePredatorPreyEnv(3, 22);
    auto config = continuousConfig();
    std::vector<std::size_t> dims;
    for (std::size_t i = 0; i < environment->numAgents(); ++i)
        dims.push_back(environment->obsDim(i));
    Matd3Trainer trainer(dims, 2, config, uniformFactory());
    TrainLoop loop(*environment, trainer, config);
    auto result = loop.run(20);
    EXPECT_GT(result.updateCalls, 0u);
    for (Real r : result.episodeRewards)
        ASSERT_TRUE(std::isfinite(r));
}

TEST(ContinuousTrainer, DeterministicUnderSeed)
{
    auto run = [] {
        auto environment = env::makeCooperativeNavigationEnv(3, 33);
        auto config = continuousConfig();
        config.seed = 33;
        std::vector<std::size_t> dims;
        for (std::size_t i = 0; i < environment->numAgents(); ++i)
            dims.push_back(environment->obsDim(i));
        MaddpgTrainer trainer(dims, 2, config, uniformFactory());
        TrainLoop loop(*environment, trainer, config);
        return loop.run(10).episodeRewards;
    };
    EXPECT_EQ(run(), run());
}

} // namespace
} // namespace marlin::core
