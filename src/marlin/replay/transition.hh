/**
 * @file
 * Transition record shapes shared by the replay subsystem.
 */

#ifndef MARLIN_REPLAY_TRANSITION_HH
#define MARLIN_REPLAY_TRANSITION_HH

#include <cstddef>

#include "marlin/base/types.hh"

namespace marlin::replay
{

/**
 * Static shape of one agent's transitions:
 * (obs, one-hot action, reward, next obs, done).
 */
struct TransitionShape
{
    std::size_t obsDim = 0;
    std::size_t actDim = 0;

    /** Scalar count of one flattened transition record. */
    std::size_t
    flatSize() const
    {
        return 2 * obsDim + actDim + 2; // reward + done flags
    }

    bool operator==(const TransitionShape &o) const = default;
};

/** Read-only view of a stored transition (pointers into SoA arrays). */
struct TransitionView
{
    const Real *obs = nullptr;      ///< obsDim values.
    const Real *action = nullptr;   ///< actDim values (one-hot).
    Real reward = 0;
    const Real *nextObs = nullptr;  ///< obsDim values.
    Real done = 0;                  ///< 0/1 terminal flag.
};

} // namespace marlin::replay

#endif // MARLIN_REPLAY_TRANSITION_HH
