/**
 * @file
 * MATD3 (Ackermann et al., 2019): MADDPG plus the three TD3
 * stabilizers — twin centralized critics taking the minimum target
 * Q, clipped Gaussian smoothing noise on target actions, and
 * delayed actor / target-network updates.
 */

#ifndef MARLIN_CORE_MATD3_HH
#define MARLIN_CORE_MATD3_HH

#include "marlin/core/maddpg.hh"

namespace marlin::core
{

/** Twin-delayed variant of the CTDE trainer. */
class Matd3Trainer : public CtdeTrainerBase
{
  public:
    Matd3Trainer(std::vector<std::size_t> obs_dims, std::size_t act_dim,
                 TrainConfig config, SamplerFactory sampler_factory);

    std::string name() const override { return "matd3"; }

  protected:
    void updateAgent(std::size_t i,
                     const std::vector<AgentBatch> &batches,
                     UpdateWorkspace &ws, profile::PhaseTimer &timer,
                     UpdateStats &stats) override;

    /**
     * Adds clipped Gaussian noise to the target logits. The noise
     * comes from @p noise_rng — the updating agent's private stream
     * — so concurrent agent updates stay deterministic.
     */
    void
    targetNextActionsInto(const std::vector<AgentBatch> &batches,
                          Rng &noise_rng,
                          std::vector<Matrix> &out) override;

    /** Persist the policy-delay counters across resume. */
    void saveExtraState(std::ostream &os) const override;
    void loadExtraState(std::istream &is) override;

  private:
    /** Per-agent critic-update counters driving the policy delay. */
    std::vector<StepCount> criticSteps;
};

} // namespace marlin::core

#endif // MARLIN_CORE_MATD3_HH
