/**
 * @file
 * Minimal blocking client for the serving protocol, shared by the
 * load generator, the latency bench and the tests. One request on
 * the wire at a time (closed loop); buffers are retained so a warm
 * request/response cycle performs no heap allocation.
 */

#ifndef MARLIN_SERVE_CLIENT_HH
#define MARLIN_SERVE_CLIENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "marlin/serve/protocol.hh"

namespace marlin::serve
{

/** Blocking request/response client over one TCP connection. */
class BlockingClient
{
  public:
    BlockingClient() = default;
    ~BlockingClient();

    BlockingClient(const BlockingClient &) = delete;
    BlockingClient &operator=(const BlockingClient &) = delete;

    BlockingClient(BlockingClient &&other) noexcept
        : _fd(other._fd), sendBuf(std::move(other.sendBuf)),
          decoder(std::move(other.decoder))
    {
        other._fd = -1;
    }

    BlockingClient &
    operator=(BlockingClient &&other) noexcept
    {
        if (this != &other) {
            close();
            _fd = other._fd;
            other._fd = -1;
            sendBuf = std::move(other.sendBuf);
            decoder = std::move(other.decoder);
        }
        return *this;
    }

    /**
     * Connect to @p host:@p port, retrying for up to @p retry_ms
     * (covers the race against a server still binding). Returns
     * false when every attempt failed.
     */
    bool connect(const std::string &host, std::uint16_t port,
                 int retry_ms = 0);

    void close();

    bool connected() const { return _fd >= 0; }

    int fd() const { return _fd; }

    /**
     * Send one request and block for its response. @p actions is
     * resized to the response payload; @p status receives the
     * response status byte. Returns false on connect/socket/EOF
     * failure (the connection is closed then).
     */
    bool request(std::uint16_t agent, const Real *obs,
                 std::size_t count, std::vector<Real> &actions,
                 Status &status);

    /**
     * Send raw bytes as-is (malformed-frame tests). Returns false
     * on socket failure.
     */
    bool sendRaw(const void *data, std::size_t n);

    /**
     * Block for one response frame. Returns false on socket
     * failure, EOF before a full frame, or a framing violation in
     * the server's response stream.
     */
    bool recvResponse(std::vector<Real> &actions, Status &status);

  private:
    int _fd = -1;
    std::vector<std::byte> sendBuf;
    FrameDecoder decoder{responseMagic, 1 << 20};
};

} // namespace marlin::serve

#endif // MARLIN_SERVE_CLIENT_HH
