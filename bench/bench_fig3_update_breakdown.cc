/**
 * @file
 * Figure 3: training-time breakdown *within* update-all-trainers
 * (mini-batch sampling / target-Q calculation / Q loss & P loss)
 * for MADDPG and MATD3 on both tasks, 3-24 agents.
 *
 * Paper reference: sampling dominates at 55-65%, target-Q grows
 * with agents (15-28%), Q/P loss share shrinks slightly.
 */

#include "hybrid_model.hh"

namespace
{

using namespace marlin;
using namespace marlin::bench;

void
runConfig(Algo algo, Task task)
{
    std::printf("\n%s / %s\n", algoName(algo), taskName(task));
    std::printf("%-8s %13s %13s %13s\n", "agents", "sampling(%)",
                "target_q(%)", "q_p_loss(%)");
    const BufferIndex capacity = sweepCapacity(task, 24);
    for (std::size_t n : {3, 6, 12, 24}) {
        EstimateContext ctx;
        auto est = estimatePhases(algo, task, n,
                                  memsim::makeRtx3090(), ctx,
                                  capacity);
        const auto split = updateSplit(est);
        std::printf("%-8zu %13.1f %13.1f %13.1f\n", n,
                    split.samplingPct, split.targetQPct,
                    split.qpLossPct);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    initThreads(argc, argv);
    initIsa(argc, argv);
    initLogLevel(argc, argv);
    ObsSession obs(argc, argv, "bench_fig3_update_breakdown");
    banner("Figure 3: update-all-trainers internal breakdown");
    runConfig(Algo::Maddpg, Task::PredatorPrey);
    runConfig(Algo::Maddpg, Task::CooperativeNavigation);
    runConfig(Algo::Matd3, Task::PredatorPrey);
    runConfig(Algo::Matd3, Task::CooperativeNavigation);
    std::printf("\npaper shape: mini-batch sampling is the largest "
                "component (55-65%%)\nacross every algorithm, task "
                "and agent count; target-Q share grows with N.\n");
    return 0;
}
