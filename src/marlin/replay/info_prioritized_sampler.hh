/**
 * @file
 * Information-prioritized locality-aware sampling (paper Section
 * IV-B1): PER chooses the high-priority reference points, and a
 * predictor maps each reference's normalized IS weight to a neighbor
 * run length — 1 neighbor below 0.33, 2 between 0.33 and 0.66, and 4
 * above — so important transitions are replayed together with their
 * spatial neighbors and the prefetcher sees sequential runs.
 */

#ifndef MARLIN_REPLAY_INFO_PRIORITIZED_SAMPLER_HH
#define MARLIN_REPLAY_INFO_PRIORITIZED_SAMPLER_HH

#include "marlin/replay/prioritized_sampler.hh"

namespace marlin::replay
{

/** Threshold-to-run-length predictor configuration. */
struct NeighborPredictorConfig
{
    Real thresholdLow = Real(0.33);  ///< T1 in the paper.
    Real thresholdHigh = Real(0.66); ///< T2 in the paper.
    std::size_t neighborsLow = 1;    ///< N1: weight < T1.
    std::size_t neighborsMid = 2;    ///< N2: T1 <= weight < T2.
    std::size_t neighborsHigh = 4;   ///< N3: weight >= T2.
};

/**
 * Map a normalized priority weight in [0, 1] to a neighbor run
 * length using the configured thresholds.
 */
std::size_t predictNeighbors(Real normalized_weight,
                             const NeighborPredictorConfig &config);

/**
 * PER with locality-aware neighbor expansion. Each stratified PER
 * draw contributes a run of consecutive transitions whose length the
 * predictor selects from the reference's normalized weight; the run
 * inherits the reference's importance weight and priority id, so TD
 * write-back refreshes the reference's priority.
 */
class InfoPrioritizedLocalitySampler : public PrioritizedSampler
{
  public:
    InfoPrioritizedLocalitySampler(
        PerConfig per_config, NeighborPredictorConfig predictor = {});

    std::string name() const override { return "info_prioritized"; }

    void planInto(BufferIndex buffer_size, std::size_t batch,
                  Rng &rng, IndexPlan &out) override;

    const NeighborPredictorConfig &predictor() const { return _predictor; }

  private:
    NeighborPredictorConfig _predictor;
};

} // namespace marlin::replay

#endif // MARLIN_REPLAY_INFO_PRIORITIZED_SAMPLER_HH
