#include "marlin/numeric/matrix.hh"

#include <algorithm>
#include <cstring>

#include "marlin/numeric/kernels.hh"

namespace marlin::numeric
{

Matrix::Matrix(std::initializer_list<std::initializer_list<Real>> rows_init)
{
    _rows = rows_init.size();
    _cols = _rows ? rows_init.begin()->size() : 0;
    _data.reserve(_rows * _cols);
    for (const auto &r : rows_init) {
        MARLIN_ASSERT(r.size() == _cols, "ragged initializer list");
        _data.insert(_data.end(), r.begin(), r.end());
    }
}

void
Matrix::zero()
{
    std::fill(_data.begin(), _data.end(), Real(0));
}

void
Matrix::fill(Real value)
{
    std::fill(_data.begin(), _data.end(), value);
}

void
Matrix::resize(std::size_t rows, std::size_t cols)
{
    // resize + fill rather than assign: both retain capacity on
    // every mainstream libstdc++/libc++, but spelling it this way
    // makes the no-reallocation-within-capacity contract explicit.
    _rows = rows;
    _cols = cols;
    _data.resize(rows * cols);
    std::fill(_data.begin(), _data.end(), Real(0));
}

void
Matrix::reshape(std::size_t rows, std::size_t cols)
{
    _rows = rows;
    _cols = cols;
    _data.resize(rows * cols);
}

Matrix &
Matrix::operator+=(const Matrix &other)
{
    MARLIN_ASSERT(_rows == other._rows && _cols == other._cols,
                  "shape mismatch in +=");
    kernels::active().add(other._data.data(), _data.data(),
                          _data.size());
    return *this;
}

Matrix &
Matrix::operator-=(const Matrix &other)
{
    MARLIN_ASSERT(_rows == other._rows && _cols == other._cols,
                  "shape mismatch in -=");
    kernels::active().sub(other._data.data(), _data.data(),
                          _data.size());
    return *this;
}

Matrix &
Matrix::operator*=(Real scale)
{
    kernels::active().scale(scale, _data.data(), _data.size());
    return *this;
}

Matrix
Matrix::transposed() const
{
    Matrix out(_cols, _rows);
    for (std::size_t r = 0; r < _rows; ++r)
        for (std::size_t c = 0; c < _cols; ++c)
            out(c, r) = (*this)(r, c);
    return out;
}

void
Matrix::copyRowFrom(std::size_t dst_row, const Matrix &src,
                    std::size_t src_row)
{
    MARLIN_ASSERT(_cols == src._cols, "column mismatch in copyRowFrom");
    MARLIN_ASSERT(dst_row < _rows && src_row < src._rows,
                  "row out of range in copyRowFrom");
    std::memcpy(row(dst_row), src.row(src_row), _cols * sizeof(Real));
}

} // namespace marlin::numeric
